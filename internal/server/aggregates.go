package server

import (
	"errors"
	"io"
	"net/http"
	"sort"

	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/quartet"
)

// The aggregate feed: POST /v1/aggregates accepts JSONL AggCell batches
// from an edge-aggregating fleet. Cells regroup into partials by their
// (agent, epoch, seq) identity, partials merge — deduplicated by that
// identity — into a per-bucket quartet.Aggregate, and a bucket's merged
// aggregate is flushed into the ingest queue as its canonically ordered
// reconstructed observations when the bucket completes: when a later
// bucket's cells arrive (streaming mode), when POST /v1/seal covers it,
// or at drain. Flushing canonical observations through the same queue
// the raw feed uses is what makes fleet-over-HTTP reports byte-identical
// to the batch run regardless of batch arrival order: within a bucket,
// delivery order dissolves into the aggregate's canonical fold.
//
// Partials must arrive whole — one partial's cells within one batch. A
// redelivered (agent, epoch, seq) is deduplicated while its bucket is
// buffered; cells arriving for an already-flushed bucket form a fresh
// aggregate that flushes on the next trigger, where the pipeline's
// quarantine rejects the records as late — the same treatment a raw
// late batch gets.

// aggState buffers not-yet-flushed per-bucket aggregates.
type aggState struct {
	pending map[netmodel.Bucket]*quartet.Aggregate
	// buffered counts merged cells awaiting flush, for backpressure.
	buffered int
	// high is the highest bucket seen; its arrival implies every bucket
	// below it is complete (the streaming watermark discipline).
	high netmodel.Bucket
}

// aggResponse summarizes one accepted aggregate batch.
type aggResponse struct {
	Cells    int `json:"cells"`
	Partials int `json:"partials"`
	// Deduped counts partials rejected as redeliveries of an identity
	// already merged into a buffered bucket.
	Deduped int `json:"deduped,omitempty"`
	// Rejected counts salvage-mode lines diverted to the quarantine.
	Rejected int `json:"rejected,omitempty"`
}

// handleAggregates accepts one JSONL aggregate-cell batch. Body bounds,
// salvage mode, draining, and backpressure behave exactly as on
// /v1/ingest; the difference is what a record is (a partial's cell, not
// a raw observation) and that admission is graded against the buffered
// aggregates plus the queue, since accepted cells occupy memory until
// their bucket flushes.
func (s *Server) handleAggregates(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: ingestion is closed")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.mOversized.Inc()
			s.mAggRejected.Inc()
			writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d bytes", tooLarge.Limit)
			return
		}
		s.mAggRejected.Inc()
		writeError(w, http.StatusBadRequest, "reading batch: %v", err)
		return
	}
	salvage := r.URL.Query().Get("mode") == "salvage"
	var onBad func([]byte)
	rejected := 0
	if salvage {
		at := s.q.Watermark()
		onBad = func(line []byte) {
			rejected++
			s.frontMu.Lock()
			s.frontQuar.RejectLine(line, at)
			s.frontMu.Unlock()
		}
	}
	cells, err := ingest.DecodeAggBatch(body, nil, onBad)
	if err != nil {
		s.mAggRejected.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.aggMu.Lock()
	queued, _ := s.q.Depth()
	if s.cfg.MaxPendingRecords > 0 && queued+s.agg.buffered+len(cells) > s.cfg.MaxPendingRecords {
		occupied := queued + s.agg.buffered
		s.aggMu.Unlock()
		s.mBackpress.Inc()
		w.Header().Set("Retry-After", retryAfterSeconds(occupied, s.cfg.MaxPendingRecords))
		writeError(w, http.StatusTooManyRequests, "aggregate buffer full (%d records pending); retry after the backend drains", s.cfg.MaxPendingRecords)
		return
	}
	if s.wal != nil {
		// Journal the accepted cells before they merge: the buffered
		// aggregate state is reconstructed on restart by replaying these
		// batches through the same merge path.
		s.wal.journalAggBatch(cells)
	}
	partials, deduped := s.mergeCellsLocked(cells)
	// Streaming discipline: the highest bucket seen completes everything
	// below it. Manual-seal deployments flush only on POST /v1/seal.
	var flushErr error
	if !s.cfg.ManualSeal && s.agg.high > 0 {
		flushErr = s.flushAggLocked(s.agg.high - 1)
	}
	s.aggMu.Unlock()
	if flushErr != nil {
		// The batch itself is buffered; only the flush of completed
		// buckets hit queue backpressure. It retries on the next trigger.
		s.mBackpress.Inc()
	}
	s.mAggBatches.Inc()
	s.mAggCells.Add(int64(len(cells)))
	s.mAggPartials.Add(int64(partials))
	s.mAggDeduped.Add(int64(deduped))
	writeJSON(w, http.StatusAccepted, aggResponse{
		Cells: len(cells), Partials: partials, Deduped: deduped, Rejected: rejected,
	})
}

// mergeCellsLocked regroups a batch's cells into partials (arrival
// order preserved within each partial) and merges them into their
// buckets' aggregates. Caller holds aggMu.
func (s *Server) mergeCellsLocked(cells []ingest.AggCell) (partials, deduped int) {
	type pkey struct {
		id quartet.PartialID
		b  netmodel.Bucket
	}
	var order []*quartet.Partial
	batch := make(map[pkey]*quartet.Partial)
	for _, c := range cells {
		k := pkey{id: c.ID(), b: c.Bucket}
		p := batch[k]
		if p == nil {
			p = quartet.NewPartial(k.id, k.b)
			batch[k] = p
			order = append(order, p)
		}
		p.Observe(c.Observation())
	}
	for _, p := range order {
		agg := s.agg.pending[p.Bucket]
		if agg == nil {
			agg = quartet.NewAggregate(p.Bucket)
			s.agg.pending[p.Bucket] = agg
		}
		if agg.Add(p) {
			partials++
			s.agg.buffered += len(p.Cells)
		} else {
			deduped++
		}
		if p.Bucket > s.agg.high {
			s.agg.high = p.Bucket
		}
	}
	return partials, deduped
}

// flushAggLocked pushes every buffered bucket <= through into the ingest
// queue as canonically ordered reconstructed observations, in bucket
// order. On queue backpressure the remaining buckets stay buffered and
// the error is returned so the caller can surface a retry; a closed
// queue discards what remains (the drain path flushes before closing).
// Caller holds aggMu.
func (s *Server) flushAggLocked(through netmodel.Bucket) error {
	if len(s.agg.pending) == 0 {
		return nil
	}
	var due []netmodel.Bucket
	for b := range s.agg.pending {
		if b <= through {
			due = append(due, b)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, b := range due {
		agg := s.agg.pending[b]
		obs := agg.Observations(nil)
		if err := s.q.Push(obs); err != nil {
			if errors.Is(err, ErrBackpressure) {
				return err
			}
			// Closed: the records have nowhere to go.
			delete(s.agg.pending, b)
			s.agg.buffered -= len(obs)
			continue
		}
		delete(s.agg.pending, b)
		s.agg.buffered -= len(obs)
		if s.wal != nil {
			// The bucket's cells left the buffer (the Push above
			// journaled their reconstruction as a queue batch); the
			// flush marker stops replay from re-buffering them.
			s.wal.journalAggFlush(b)
		}
		s.mAggFlushed.Add(int64(len(obs)))
	}
	// Make the flushed buckets readable even if no raw record for a
	// later bucket ever arrives to advance the queue's watermark.
	s.q.SealThrough(through)
	return nil
}

// flushAggregates flushes buffered aggregates through the bucket, for
// the seal handler and the drain path.
func (s *Server) flushAggregates(through netmodel.Bucket) error {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	return s.flushAggLocked(through)
}

// aggBuffered reports buffered cell count and bucket count (tests,
// healthz).
func (s *Server) aggStats() (cells, buckets int) {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	return s.agg.buffered, len(s.agg.pending)
}
