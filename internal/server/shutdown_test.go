package server

import (
	"bytes"
	"net/http"
	"testing"

	"blameit/internal/netmodel"
)

// TestGracefulShutdownDrainsInFlightWindow: a drain arriving mid-window
// (the SIGTERM path) steps every queued bucket, flushes the partial
// window as a final report, and exits cleanly — without fabricating
// probe-infrastructure-failure (Degraded) verdicts out of the shutdown
// itself.
func TestGracefulShutdownDrainsInFlightWindow(t *testing.T) {
	warmup := netmodel.Bucket(netmodel.BucketsPerHour)
	e := newTestEnv(t, func(c *Config) { c.WarmupBuckets = warmup })

	// Push buckets 0..16: the stream seals through 15, so the backend
	// warms up over [0,12), steps 12..15 (job report at 14), and leaves
	// bucket 15 in the accumulating window with bucket 16 still queued.
	var batch bytes.Buffer
	last := warmup + 4 // bucket 16
	n16 := 0           // records in the last (still unsealed) bucket
	var probeLine []byte
	for b := netmodel.Bucket(0); b <= last; b++ {
		obs := e.bucketObs(b)
		if b == 0 {
			probeLine = jsonlBody(t, obs[:1])
		}
		if b == last {
			n16 = len(obs)
		}
		batch.Write(jsonlBody(t, obs))
	}
	if status, body := e.post(t, "/v1/ingest", batch.Bytes()); status != http.StatusAccepted {
		t.Fatalf("POST = %d (%s), want 202", status, body)
	}
	waitFor(t, "backend to consume through bucket 15", func() bool {
		_, h := e.health(t)
		return h.Reports >= 1 && h.QueueDepth == n16
	})

	e.shutdown(t) // fails the test if the backend surfaced an error

	if got := e.srv.Reports(); got != 2 {
		t.Fatalf("reports after drain = %d, want 2 (the cadence report and the flushed window)", got)
	}
	final, ok := e.srv.reports.latest()
	if !ok {
		t.Fatal("no final report retained")
	}
	if final.rep.From != warmup+3 || final.rep.To != last {
		t.Errorf("flushed window = [%d, %d], want [%d, %d]", final.rep.From, final.rep.To, warmup+3, last)
	}
	for _, sr := range e.srv.reports.snapshot() {
		for _, v := range sr.rep.Verdicts {
			if v.Degraded {
				t.Errorf("report [%d, %d] carries a Degraded verdict fabricated during shutdown: %+v",
					sr.rep.From, sr.rep.To, v)
			}
		}
	}
	status, h := e.health(t)
	if status != http.StatusOK || h.Backend != "stopped" {
		t.Errorf("healthz after drain = %d backend=%q, want 200 stopped", status, h.Backend)
	}
	if st, _ := e.post(t, "/v1/ingest", probeLine); st != http.StatusServiceUnavailable {
		t.Errorf("ingest after shutdown = %d, want 503", st)
	}
}

// TestShutdownOnCadenceBoundaryAddsNoReport: when the drain lands
// exactly on the job cadence the window is empty, and finalization must
// not fabricate an extra (empty) report.
func TestShutdownOnCadenceBoundaryAddsNoReport(t *testing.T) {
	warmup := netmodel.Bucket(netmodel.BucketsPerHour)
	e := newTestEnv(t, func(c *Config) { c.WarmupBuckets = warmup })

	// Push buckets 0..14: the stream seals through 13; the drain steps
	// the queued bucket 14, which closes the job window [12,14] exactly
	// on cadence (RunEvery=3), leaving nothing to flush.
	var batch bytes.Buffer
	for b := netmodel.Bucket(0); b <= warmup+2; b++ {
		batch.Write(jsonlBody(t, e.bucketObs(b)))
	}
	if status, body := e.post(t, "/v1/ingest", batch.Bytes()); status != http.StatusAccepted {
		t.Fatalf("POST = %d (%s), want 202", status, body)
	}
	e.shutdown(t)

	if got := e.srv.Reports(); got != 1 {
		t.Fatalf("reports after cadence-aligned drain = %d, want exactly 1", got)
	}
	final, _ := e.srv.reports.latest()
	if final.rep.From != warmup || final.rep.To != warmup+2 {
		t.Errorf("report window = [%d, %d], want [%d, %d]", final.rep.From, final.rep.To, warmup, warmup+2)
	}
}
