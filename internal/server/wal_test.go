package server

// Crash-safety tests for the WAL-backed daemon: restart equivalence
// across seeded in-process crash points, SIGKILL-based kill injection
// against the real binary, corrupt-tail truncation, degraded-disk
// fallback, recovery stats on /healthz, and the Retry-After derivation.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"blameit/internal/bgp"
	"blameit/internal/chaos"
	"blameit/internal/faults"
	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
	"blameit/internal/wal"
)

// walEnv is one daemon incarnation. It can be crashed — backend killed
// wherever it is, no drain, no finalize, WAL abandoned without a final
// sync, exactly the state a SIGKILL leaves behind — and a fresh
// incarnation opened over the same directory.
type walEnv struct {
	srv   *Server
	ts    *httptest.Server
	alive bool
}

// openEnv starts one incarnation. makeSim builds the probe-serving
// simulator — a fresh instance per incarnation, because a real restart
// regenerates the engine from seeds and replay re-issues every probe
// from zero. dir == "" runs without durability (the seed behavior).
func openEnv(t *testing.T, dir string, makeSim func() *sim.Simulator, mut func(*Config)) *walEnv {
	t.Helper()
	probeSim := makeSim()
	pcfg := pipeline.DefaultConfig()
	pcfg.Workers = 1
	cfg := Config{Pipeline: pcfg}
	if dir != "" {
		cfg.DataDir = dir
		cfg.WAL = wal.Config{Fsync: wal.SyncOff}
		cfg.CompactEveryReports = 8
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(pipeline.Deps{
		World:  probeSim.World,
		Table:  probeSim.Routes,
		Prober: probe.NewEngine(probeSim, cfg.Pipeline.ProbeNoiseMS),
	}, cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	e := &walEnv{srv: srv, ts: httptest.NewServer(srv.Handler()), alive: true}
	t.Cleanup(func() {
		if !e.alive {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = e.srv.Shutdown(ctx)
		e.ts.Close()
		e.alive = false
	})
	return e
}

// crash kills the incarnation: the backend's context is cancelled (it
// stops mid-read or mid-step, whatever it was doing), the listener goes
// away, and the log is closed without a sync. Nothing that was not
// already written reaches disk.
func (e *walEnv) crash() {
	e.srv.bcancel()
	<-e.srv.done
	e.ts.Close()
	if e.srv.wal != nil {
		e.srv.wal.log.Abandon()
	}
	e.alive = false
}

// close drains the incarnation gracefully.
func (e *walEnv) close(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	e.ts.Close()
	e.alive = false
}

// quiesce blocks until the backend has fully consumed the feed through
// sealed bucket b: the frontier has passed every bucket a read covers at
// this watermark (during warmup only every WarmupSampleEvery'th bucket
// is read), and — past warmup — bucket b's step and report publish have
// retired.
func (e *walEnv) quiesce(t *testing.T, b netmodel.Bucket) {
	t.Helper()
	cfg := e.srv.cfg
	want := b + 1
	if b < cfg.WarmupBuckets {
		stride := netmodel.Bucket(cfg.Pipeline.WarmupSampleEvery)
		want = b - b%stride + 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if !e.srv.q.awaitFrontier(ctx, want) {
		t.Fatalf("quiesce: frontier never reached %d (backend err: %v)", want, e.srv.Err())
	}
	if b >= cfg.WarmupBuckets && !e.srv.q.awaitStepped(ctx, b) {
		t.Fatalf("quiesce: bucket %d never stepped (backend err: %v)", b, e.srv.Err())
	}
}

func checkRecoveryConsistent(t *testing.T, e *walEnv) {
	t.Helper()
	wh := e.srv.WALHealth()
	if wh == nil {
		t.Fatal("reopened daemon reports no WAL health")
	}
	if wh.RecoveryInconsistent != 0 {
		t.Fatalf("recovery marked %d inconsistencies: %+v", wh.RecoveryInconsistent, wh)
	}
	if wh.Degraded {
		t.Fatalf("durability degraded after reopen: %+v", wh)
	}
}

// crashPoint is one seeded kill: after bucket's ingest, in one of three
// modes. "boundary" quiesces first (the sealed-bucket boundary),
// "afterseal" kills with the seal acked but the backend mid-flight
// (post-seal pre-report), "midbatch" kills between two halves of the
// bucket's batch before its seal (mid-batch).
type crashPoint struct {
	bucket netmodel.Bucket
	mode   string
}

// seededPoints draws n distinct crash buckets in [1, horizon-2] with at
// least one mid-batch and one after-seal kill per run.
func seededPoints(rng *rand.Rand, horizon, n int) []crashPoint {
	picked := map[int]bool{}
	for len(picked) < n {
		picked[1+rng.Intn(horizon-2)] = true
	}
	buckets := make([]int, 0, n)
	for b := range picked {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	points := make([]crashPoint, n)
	for i, b := range buckets {
		mode := "boundary"
		switch i {
		case 0:
			mode = "midbatch"
		case 1:
			mode = "afterseal"
		}
		points[i] = crashPoint{bucket: netmodel.Bucket(b), mode: mode}
	}
	return points
}

// runServiceFeed drives one service run over pre-generated bucket
// streams — POST, seal, next — crashing and reopening at each crash
// point. It returns the final incarnation, quiesced through the last
// bucket and still serving, so callers can read reports, verdicts, and
// health before closing it.
func runServiceFeed(t *testing.T, dir string, makeSim func() *sim.Simulator, mut func(*Config), streams [][]trace.Observation, points []crashPoint) *walEnv {
	t.Helper()
	e := openEnv(t, dir, makeSim, mut)
	pi := 0
	for b := range streams {
		bb := netmodel.Bucket(b)
		obs := streams[b]
		if pi < len(points) && points[pi].bucket == bb && points[pi].mode == "midbatch" && len(obs) > 1 {
			half := len(obs) / 2
			postWithRetry(t, e.ts.Client(), e.ts.URL+"/v1/ingest", jsonlBody(t, obs[:half]))
			e.crash()
			e = openEnv(t, dir, makeSim, mut)
			checkRecoveryConsistent(t, e)
			obs = obs[half:] // replay restored the first half as a leftover
			pi++
		}
		if len(obs) > 0 {
			postWithRetry(t, e.ts.Client(), e.ts.URL+"/v1/ingest", jsonlBody(t, obs))
		}
		if st, body := postSeal(t, e.ts.Client(), e.ts.URL, bb); st != http.StatusAccepted {
			t.Fatalf("seal %d = %d (%s)", bb, st, body)
		}
		if pi < len(points) && points[pi].bucket == bb {
			if points[pi].mode == "boundary" {
				e.quiesce(t, bb)
			}
			pi++
			e.crash()
			e = openEnv(t, dir, makeSim, mut)
			checkRecoveryConsistent(t, e)
		}
	}
	e.quiesce(t, netmodel.Bucket(len(streams)-1))
	return e
}

func reportsIndex(t *testing.T, client *http.Client, base string) []byte {
	t.Helper()
	resp, err := client.Get(base + "/v1/reports")
	if err != nil {
		t.Fatalf("GET /v1/reports: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading /v1/reports: %v", err)
	}
	return buf.Bytes()
}

// simStreams pre-generates every bucket's observation stream from one
// feed simulator, so each arm of an equivalence test ingests the
// identical byte-for-byte telemetry.
func simStreams(feed *sim.Simulator, horizon int) [][]trace.Observation {
	streams := make([][]trace.Observation, horizon)
	for b := range streams {
		streams[b] = append([]trace.Observation(nil), feed.ObservationsAt(netmodel.Bucket(b), nil)...)
	}
	return streams
}

// TestWALRestartEquivalence is the in-process half of the crash gate:
// the same trace fed to a durability-free daemon, a WAL daemon that
// never crashes, and WAL daemons crash-killed at seeded points —
// mid-batch, post-seal pre-report, and quiesced sealed-bucket
// boundaries, crossing warmup, step, and compaction cadences — must all
// serve byte-identical /v1/reports.
func TestWALRestartEquivalence(t *testing.T) {
	const warmup = 36
	horizon, runs, pointsPerRun := 144, 4, 5
	if testing.Short() {
		horizon, runs, pointsPerRun = 72, 1, 3
	}
	streams := simStreams(newTestSim(1), horizon)
	mkSim := func() *sim.Simulator { return newTestSim(1) }
	mut := func(c *Config) { c.WarmupBuckets = warmup }

	ref := runServiceFeed(t, "", mkSim, mut, streams, nil)
	want := collectCanonical(t, ref.ts.Client(), ref.ts.URL)
	wantIdx := reportsIndex(t, ref.ts.Client(), ref.ts.URL)
	ref.close(t)
	if len(want) == 0 {
		t.Fatal("reference run produced no reports — test horizon too short")
	}

	clean := runServiceFeed(t, t.TempDir(), mkSim, mut, streams, nil)
	if got := collectCanonical(t, clean.ts.Client(), clean.ts.URL); !bytes.Equal(got, want) {
		t.Fatalf("WAL-enabled run (no crash) diverged from the durability-free run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	clean.close(t)

	for run := 0; run < runs; run++ {
		run := run
		t.Run(fmt.Sprintf("crashes-%d", run), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000*run + 7)))
			points := seededPoints(rng, horizon, pointsPerRun)
			t.Logf("crash points: %+v", points)
			e := runServiceFeed(t, t.TempDir(), mkSim, mut, streams, points)
			defer e.close(t)
			if got := collectCanonical(t, e.ts.Client(), e.ts.URL); !bytes.Equal(got, want) {
				t.Errorf("reports diverged after %d crash/recover cycles", len(points))
			}
			if got := reportsIndex(t, e.ts.Client(), e.ts.URL); !bytes.Equal(got, wantIdx) {
				t.Errorf("report index diverged after crashes:\n got %s\nwant %s", got, wantIdx)
			}
			wh := e.srv.WALHealth()
			if wh.RecoveredBuckets == 0 || wh.RecoveredReports == 0 {
				t.Errorf("final incarnation recovered nothing: %+v", wh)
			}
		})
	}
}

// TestWALHealthzRecoveryStats pins the exact recovery counters a
// restart surfaces on /healthz.
func TestWALHealthzRecoveryStats(t *testing.T) {
	dir := t.TempDir()
	mkSim := func() *sim.Simulator { return newTestSim(1) }
	streams := simStreams(newTestSim(1), 12)

	e := openEnv(t, dir, mkSim, nil) // warmup 0: every bucket is stepped
	for b := 0; b < 9; b++ {
		postWithRetry(t, e.ts.Client(), e.ts.URL+"/v1/ingest", jsonlBody(t, streams[b]))
		if st, body := postSeal(t, e.ts.Client(), e.ts.URL, netmodel.Bucket(b)); st != http.StatusAccepted {
			t.Fatalf("seal %d = %d (%s)", b, st, body)
		}
		e.quiesce(t, netmodel.Bucket(b))
	}
	e.crash()

	e = openEnv(t, dir, mkSim, nil)
	defer e.close(t)
	wh := e.srv.WALHealth()
	if wh.RecoveredBuckets != 9 || wh.RecoveredBatches != 9 || wh.RecoveredReports != 3 {
		t.Fatalf("recovered buckets/batches/reports = %d/%d/%d, want 9/9/3",
			wh.RecoveredBuckets, wh.RecoveredBatches, wh.RecoveredReports)
	}
	if wh.TruncatedBytes != 0 || wh.RecoveryInconsistent != 0 || wh.Degraded {
		t.Fatalf("unexpected recovery state: %+v", wh)
	}

	// The same stats through the HTTP surface.
	resp, err := e.ts.Client().Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var h healthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding /healthz: %v", err)
	}
	if h.WAL == nil {
		t.Fatal("/healthz has no wal section with -data-dir set")
	}
	if *h.WAL != *wh {
		t.Fatalf("/healthz wal section %+v != WALHealth %+v", *h.WAL, *wh)
	}

	// The reopened daemon keeps going where the dead one stopped.
	for b := 9; b < 12; b++ {
		postWithRetry(t, e.ts.Client(), e.ts.URL+"/v1/ingest", jsonlBody(t, streams[b]))
		if st, body := postSeal(t, e.ts.Client(), e.ts.URL, netmodel.Bucket(b)); st != http.StatusAccepted {
			t.Fatalf("seal %d = %d (%s)", b, st, body)
		}
		e.quiesce(t, netmodel.Bucket(b))
	}
	if n := e.srv.Reports(); n != 4 {
		t.Fatalf("reports after restart+resume = %d, want 4", n)
	}
}

// TestWALCorruptTailTruncated garbles the newest segment's tail and
// verifies the reopen truncates at the last valid record, reports the
// dropped bytes, and recovers everything before the corruption.
func TestWALCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	mkSim := func() *sim.Simulator { return newTestSim(1) }
	streams := simStreams(newTestSim(1), 6)

	e := openEnv(t, dir, mkSim, nil)
	for b := range streams {
		postWithRetry(t, e.ts.Client(), e.ts.URL+"/v1/ingest", jsonlBody(t, streams[b]))
		if st, body := postSeal(t, e.ts.Client(), e.ts.URL, netmodel.Bucket(b)); st != http.StatusAccepted {
			t.Fatalf("seal %d = %d (%s)", b, st, body)
		}
		e.quiesce(t, netmodel.Bucket(b))
	}
	want := collectCanonical(t, e.ts.Client(), e.ts.URL)
	e.close(t)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	sort.Strings(segs)
	garbage := bytes.Repeat([]byte{0xEE}, 37)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e = openEnv(t, dir, mkSim, nil)
	defer e.close(t)
	wh := e.srv.WALHealth()
	if wh.TruncatedBytes != int64(len(garbage)) {
		t.Fatalf("TruncatedBytes = %d, want %d", wh.TruncatedBytes, len(garbage))
	}
	if wh.RecoveryInconsistent != 0 {
		t.Fatalf("truncated tail flagged inconsistency: %+v", wh)
	}
	if got := collectCanonical(t, e.ts.Client(), e.ts.URL); !bytes.Equal(got, want) {
		t.Fatal("reports diverged after corrupt-tail truncation")
	}
}

// TestWALDegradedDisk yanks the data directory out from under a running
// daemon: the next segment rotation fails, durability degrades loudly,
// and the data plane keeps serving from memory.
func TestWALDegradedDisk(t *testing.T) {
	dir := t.TempDir()
	streams := simStreams(newTestSim(1), 24)
	e := openEnv(t, dir, func() *sim.Simulator { return newTestSim(1) }, func(c *Config) {
		c.WAL.SegmentBytes = 4 << 10 // rotate every few records
	})
	defer func() {
		if e.alive {
			e.close(t)
		}
	}()

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	degradedAt := -1
	for b := 0; b < len(streams); b++ {
		postWithRetry(t, e.ts.Client(), e.ts.URL+"/v1/ingest", jsonlBody(t, streams[b]))
		if st, body := postSeal(t, e.ts.Client(), e.ts.URL, netmodel.Bucket(b)); st != http.StatusAccepted {
			t.Fatalf("seal %d = %d (%s)", b, st, body)
		}
		e.quiesce(t, netmodel.Bucket(b))
		if degradedAt < 0 && e.srv.WALHealth().Degraded {
			degradedAt = b
		}
		// Once degraded, run a few more buckets to show the data plane
		// keeps ingesting, stepping, and publishing from memory.
		if degradedAt >= 0 && b >= degradedAt+6 {
			break
		}
	}
	if degradedAt < 0 {
		t.Fatal("removing the data directory never degraded durability")
	}
	if n := e.srv.Reports(); n == 0 {
		t.Fatal("no reports published while degraded")
	}
	status, h := (&testEnv{srv: e.srv, ts: e.ts}).health(t)
	if status != http.StatusOK || h.WAL == nil || !h.WAL.Degraded {
		t.Fatalf("healthz = %d %+v, want 200 with wal.degraded_durability", status, h.WAL)
	}
}

// TestRetryAfterDerivation pins the queue-occupancy → Retry-After
// mapping, including the full-queue answer of 5s and the clamp.
func TestRetryAfterDerivation(t *testing.T) {
	cases := []struct {
		occupied, max int
		want          string
	}{
		{0, 100, "1"},
		{24, 100, "1"},
		{25, 100, "2"},
		{50, 100, "3"},
		{99, 100, "4"},
		{100, 100, "5"}, // full queue
		{180, 100, "8"},
		{900, 100, "8"}, // clamp
		{5, 0, "1"},     // unbounded queue
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.occupied, c.max); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d) = %s, want %s", c.occupied, c.max, got, c.want)
		}
	}
}

// TestRetryAfterFullQueuePinned fills the ingest queue exactly and pins
// the 429's Retry-After header at the derived full-queue value.
func TestRetryAfterFullQueuePinned(t *testing.T) {
	obs0 := newTestSim(1).ObservationsAt(0, nil)
	e := newTestEnv(t, func(c *Config) {
		c.ManualSeal = true // nothing seals, so nothing drains
		c.MaxPendingRecords = len(obs0)
	})
	if st, body := e.post(t, "/v1/ingest", jsonlBody(t, obs0)); st != http.StatusAccepted {
		t.Fatalf("exact-fill ingest = %d (%s), want 202", st, body)
	}
	resp, err := e.ts.Client().Post(e.ts.URL+"/v1/ingest", "application/x-ndjson",
		bytes.NewReader(jsonlBody(t, e.bucketObs(1))))
	if err != nil {
		t.Fatalf("POST over full queue: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST over full queue = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Fatalf("Retry-After on full queue = %q, want \"5\"", ra)
	}
}

// chaosWorld builds the shared topology, fault schedule, and simulator
// constructor for the restart-under-chaos run: a 1-day warmup plus a
// 1-day localization window with two middle-AS incidents inside it.
func chaosWorld() (*topology.World, func() *sim.Simulator) {
	w := topology.Generate(topology.SmallScale(), 42)
	horizon := netmodel.Bucket(3 * netmodel.BucketsPerDay)
	var fs []faults.Fault
	for i, region := range []netmodel.Region{netmodel.RegionUSA, netmodel.RegionEurope} {
		tr := w.Transits[region]
		fs = append(fs, faults.Fault{
			Kind: faults.MiddleASFault, AS: tr[i%len(tr)], ScopeCloud: faults.NoCloud,
			Start:    netmodel.Bucket(300 + 150*i),
			Duration: 18, ExtraMS: 90,
		})
	}
	mk := func() *sim.Simulator {
		w := topology.Generate(topology.SmallScale(), 42)
		tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, 7)
		return sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(99))
	}
	return w, mk
}

// chaosStreams pulls every bucket through a chaos source wrapped around
// the feed simulator — drops, corruption, duplicates, and late
// redeliveries land in the per-bucket streams exactly as they would at
// a flaky edge — then sanitizes non-finite RTTs for the JSONL wire:
// encoding/json cannot carry NaN/Inf, and a negative mean RTT is
// equally corrupt to the quarantine, so the injected-corruption count
// survives the transport bit for bit.
func chaosStreams(t *testing.T, w *topology.World, feed *sim.Simulator, ccfg chaos.Config, horizon int) ([][]trace.Observation, chaos.SourceStats) {
	t.Helper()
	src := chaos.NewSource(ingest.NewSimSource(feed), ccfg, netmodel.PrefixID(len(w.Prefixes)))
	streams := make([][]trace.Observation, horizon)
	ctx := context.Background()
	for b := range streams {
		var obs []trace.Observation
		var err error
		for attempt := 0; attempt < 4; attempt++ { // transient injections retry
			if obs, err = src.ObservationsAt(ctx, netmodel.Bucket(b), nil); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("chaos stream bucket %d: %v", b, err)
		}
		streams[b] = append([]trace.Observation(nil), obs...)
		for i := range streams[b] {
			if math.IsNaN(streams[b][i].MeanRTT) {
				streams[b][i].MeanRTT = -1e6
			} else if math.IsInf(streams[b][i].MeanRTT, 0) {
				streams[b][i].MeanRTT = -2e6
			}
		}
	}
	return streams, src.Stats()
}

// gradeVerdicts grades every served verdict against simulator ground
// truth, counting only clear-cut cases (dominant, sizable, middle
// segment) exactly as the chaos end-to-end test does.
func gradeVerdicts(t *testing.T, body []byte, truth *sim.Simulator) (graded, wrong int) {
	t.Helper()
	var wins []verdictWindow
	if err := json.Unmarshal(body, &wins); err != nil {
		t.Fatalf("decoding /v1/verdicts: %v", err)
	}
	for _, win := range wins {
		for _, v := range win.Verdicts {
			if !v.Probed || v.Degraded || !v.OK {
				continue
			}
			inf := truth.DominantInflation(v.Issue.Prefixes[0], v.Issue.Cloud, win.To)
			if inf.Segment != netmodel.SegMiddle || !inf.Dominant || inf.TotalMS < 20 {
				continue
			}
			graded++
			if v.AS != inf.AS {
				wrong++
			}
		}
	}
	return graded, wrong
}

// TestRestartUnderChaos is the satellite gate: a 2-day light-chaos run
// killed and recovered at sealed-bucket boundaries — mid-warmup,
// mid-incident, and near the end — must serve reports byte-identical to
// an uninterrupted durability-free run over the same chaotic feed,
// localize nothing wrongly, and keep the quarantine books balanced
// against the injected faults across every restart.
func TestRestartUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("2-day chaos restart run skipped in -short mode")
	}
	const warmup = netmodel.BucketsPerDay
	const horizon = 2 * netmodel.BucketsPerDay
	w, mkSim := chaosWorld()
	streams, st := chaosStreams(t, w, mkSim(), chaos.Light(1234), horizon)
	if st.Corrupted == 0 || st.LateDelivered == 0 || st.Duplicated == 0 {
		t.Fatalf("light profile injected nothing over %d buckets: %+v", horizon, st)
	}
	mut := func(c *Config) {
		c.WarmupBuckets = warmup
		// The service queue discards records for buckets the sampled
		// warmup skips; read every bucket so each injected late record
		// meets the quarantine and the books stay exactly balanced.
		c.Pipeline.WarmupSampleEvery = 1
	}

	ref := runServiceFeed(t, "", mkSim, mut, streams, nil)
	want := collectCanonical(t, ref.ts.Client(), ref.ts.URL)
	ref.close(t)
	wantQuar := ref.srv.Pipeline().Quarantine()

	points := []crashPoint{
		{bucket: 150, mode: "boundary"}, // mid-warmup
		{bucket: 310, mode: "boundary"}, // inside the first incident
		{bucket: 540, mode: "boundary"}, // near the end
	}
	e := runServiceFeed(t, t.TempDir(), mkSim, mut, streams, points)
	got := collectCanonical(t, e.ts.Client(), e.ts.URL)
	verdicts, status := []byte(nil), 0
	{
		resp, err := e.ts.Client().Get(e.ts.URL + "/v1/verdicts")
		if err != nil {
			t.Fatalf("GET /v1/verdicts: %v", err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		verdicts, status = buf.Bytes(), resp.StatusCode
	}
	e.close(t)

	if !bytes.Equal(got, want) {
		t.Errorf("chaos run reports diverged across %d crash/recover cycles", len(points))
	}
	if status != http.StatusOK {
		t.Fatalf("GET /v1/verdicts = %d", status)
	}
	graded, wrong := gradeVerdicts(t, verdicts, mkSim())
	if graded == 0 {
		t.Fatal("no clear-cut verdicts graded — chaos world too quiet")
	}
	if wrong != 0 {
		t.Errorf("%d/%d clear-cut verdicts wrongly localized after restarts", wrong, graded)
	}

	// The quarantine books after three restarts must balance the
	// injected fault schedule exactly, and match the uninterrupted arm.
	q := e.srv.Pipeline().Quarantine()
	if got := q.Count(ingest.ReasonCorrupt); got != st.Corrupted {
		t.Errorf("corrupt: injected %d, quarantined %d", st.Corrupted, got)
	}
	if got := q.Count(ingest.ReasonLate); got != st.LateDelivered {
		t.Errorf("late: delivered %d, quarantined %d", st.LateDelivered, got)
	}
	if got := q.Count(ingest.ReasonDuplicate); got != st.Duplicated {
		t.Errorf("duplicate: injected %d, quarantined %d", st.Duplicated, got)
	}
	for _, r := range []ingest.Reason{ingest.ReasonCorrupt, ingest.ReasonLate, ingest.ReasonDuplicate} {
		if a, b := q.Count(r), wantQuar.Count(r); a != b {
			t.Errorf("quarantine %v: crash arm %d, uninterrupted arm %d", r, a, b)
		}
	}
	t.Logf("chaos restart: graded=%d wrong=%d injected=%+v", graded, wrong, st)
}

// --- SIGKILL harness against the real binary ---

// daemonProc is one blameitd subprocess bound to an ephemeral port.
type daemonProc struct {
	cmd  *exec.Cmd
	base string
}

func startDaemon(t *testing.T, bin string, args []string) *daemonProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	// The listen line prints only after recovery has replayed, so
	// finding it means the daemon is fully caught up.
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "blameitd listening on "); ok {
			addr = strings.Fields(rest)[0]
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("daemon never printed its listen address (scan err %v)", sc.Err())
	}
	go func() { // drain the rest so the child never blocks on stdout
		for sc.Scan() {
		}
	}()
	return &daemonProc{cmd: cmd, base: "http://" + addr}
}

// kill SIGKILLs the daemon — the real thing, no cleanup of any kind.
func (d *daemonProc) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	_, _ = d.cmd.Process.Wait()
}

// httpQuiesce polls /healthz until the queue is drained through b.
func httpQuiesce(t *testing.T, client *http.Client, base string, b netmodel.Bucket) {
	t.Helper()
	waitFor(t, fmt.Sprintf("daemon drained through bucket %d", b), func() bool {
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			return false
		}
		var h healthResponse
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		return err == nil && h.QueueDepth == 0 && h.Watermark > b
	})
}

// TestCrashRecoverySIGKILL is the kill-injection gate against the real
// binary: the daemon is `kill -9`ed at 20 seeded points while ingesting
// a deterministic 96-bucket feed — half of the kills land on a drained
// sealed-bucket boundary, half mid-window right after a seal ack — and
// each restart must replay its WAL and end byte-identical to an
// uninterrupted in-memory daemon fed the same stream.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-injection run skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "blameitd")
	if out, err := exec.Command(goBin, "build", "-o", bin, "blameit/cmd/blameitd").CombinedOutput(); err != nil {
		t.Fatalf("building blameitd: %v\n%s", err, out)
	}

	// The feed mirrors cmd/blameitd's seed derivation for -seed 42, so
	// the daemon's regenerated world matches the trace producer's.
	const seed = 42
	w := topology.Generate(topology.SmallScale(), seed)
	horizon := netmodel.Bucket(netmodel.BucketsPerDay)
	fs := faults.Generate(w, faults.DefaultGenerateConfig(), horizon, seed+1).Faults
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, seed+2)
	feed := sim.New(w, tbl, faults.NewSchedule(fs), sim.DefaultConfig(seed+3))
	const buckets = 96
	streams := simStreams(feed, buckets)

	worldArgs := []string{
		"-addr", "127.0.0.1:0", "-scale", "small", "-seed", "42",
		"-workload", "random", "-warmup", "0", "-days", "1",
	}
	client := &http.Client{Timeout: 30 * time.Second}
	feedRange := func(t *testing.T, base string, from, to int) {
		t.Helper()
		for b := from; b < to; b++ {
			postWithRetry(t, client, base+"/v1/ingest", jsonlBody(t, streams[b]))
			if st, body := postSeal(t, client, base, netmodel.Bucket(b)); st != http.StatusAccepted {
				t.Fatalf("seal %d = %d (%s)", b, st, body)
			}
		}
	}

	// Control: an uninterrupted in-memory daemon over the same feed.
	ctl := startDaemon(t, bin, worldArgs)
	feedRange(t, ctl.base, 0, buckets)
	httpQuiesce(t, client, ctl.base, buckets-1)
	want := collectCanonical(t, client, ctl.base)
	wantIdx := reportsIndex(t, client, ctl.base)
	ctl.kill(t)
	if len(want) == 0 {
		t.Fatal("control daemon produced no reports")
	}

	// Kill arm: 20 seeded kill -9 points over one WAL directory.
	rng := rand.New(rand.NewSource(4211))
	killSet := map[int]bool{}
	for len(killSet) < 20 {
		killSet[1+rng.Intn(buckets-2)] = true
	}
	kills := make([]int, 0, 20)
	for b := range killSet {
		kills = append(kills, b)
	}
	sort.Ints(kills)

	dataDir := filepath.Join(tmp, "wal")
	walArgs := append(append([]string{}, worldArgs...), "-data-dir", dataDir, "-fsync", "off", "-compact-every", "6")
	d := startDaemon(t, bin, walArgs)
	next := 0
	for i, kb := range kills {
		feedRange(t, d.base, next, kb+1)
		next = kb + 1
		if i%2 == 0 {
			// Sealed-bucket boundary: every acked record consumed.
			httpQuiesce(t, client, d.base, netmodel.Bucket(kb))
		} // else: mid-window, the seal acked but the backend wherever it is
		d.kill(t)
		d = startDaemon(t, bin, walArgs)
	}
	feedRange(t, d.base, next, buckets)
	httpQuiesce(t, client, d.base, buckets-1)

	got := collectCanonical(t, client, d.base)
	gotIdx := reportsIndex(t, client, d.base)
	if !bytes.Equal(got, want) {
		t.Errorf("reports diverged after %d kill -9/recover cycles (%d vs %d bytes)", len(kills), len(got), len(want))
	}
	if !bytes.Equal(gotIdx, wantIdx) {
		t.Errorf("report index diverged:\n got %s\nwant %s", gotIdx, wantIdx)
	}
	resp, err := client.Get(d.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.WAL == nil || h.WAL.RecoveryInconsistent != 0 || h.WAL.Degraded {
		t.Errorf("final daemon WAL health: %+v", h.WAL)
	}
	d.kill(t)
}
