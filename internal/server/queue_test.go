package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

func obsAt(b netmodel.Bucket, n int) []trace.Observation {
	out := make([]trace.Observation, n)
	for i := range out {
		out[i] = trace.Observation{Prefix: netmodel.PrefixID(i), Bucket: b, Samples: 10, MeanRTT: 50, Clients: 3}
	}
	return out
}

// TestQueueStreamingSeal: a record for bucket X seals every bucket below
// X; reads serve sealed buckets in arrival order and block otherwise.
func TestQueueStreamingSeal(t *testing.T) {
	q := newIngestQueue(0, false)
	if err := q.Push(obsAt(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(obsAt(1, 2)); err != nil {
		t.Fatal(err)
	}
	if w := q.Watermark(); w != 1 {
		t.Fatalf("watermark = %d, want 1 (bucket-1 arrival seals bucket 0)", w)
	}
	got, err := q.ObservationsAt(context.Background(), 0, nil)
	if err != nil || len(got) != 3 {
		t.Fatalf("read bucket 0 = %d records, %v; want 3, nil", len(got), err)
	}
	// Bucket 1 is unsealed: the read must block until SealThrough.
	done := make(chan int, 1)
	go func() {
		o, _ := q.ObservationsAt(context.Background(), 1, nil)
		done <- len(o)
	}()
	select {
	case n := <-done:
		t.Fatalf("read of unsealed bucket 1 returned %d records without blocking", n)
	case <-time.After(20 * time.Millisecond):
	}
	q.SealThrough(1)
	if n := <-done; n != 2 {
		t.Fatalf("read bucket 1 = %d records, want 2", n)
	}
}

// TestQueueBackpressureWholeBatch: admission is all-or-nothing against
// MaxPendingRecords.
func TestQueueBackpressureWholeBatch(t *testing.T) {
	q := newIngestQueue(5, true)
	if err := q.Push(obsAt(0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(obsAt(0, 2)); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("overflow push = %v, want ErrBackpressure", err)
	}
	if pending, pushed := q.Depth(); pending != 4 || pushed != 4 {
		t.Fatalf("depth after refused batch = %d/%d, want 4/4 (nothing from the refused batch enqueued)", pending, pushed)
	}
	if err := q.Push(obsAt(0, 1)); err != nil {
		t.Fatalf("within-capacity push after refusal = %v, want nil", err)
	}
}

// TestQueueStaleServedOnNextRead: arrivals behind the read frontier are
// held and delivered with the next read, ahead of the bucket's own
// records, for the pipeline's late-record quarantine to reject.
func TestQueueStaleServedOnNextRead(t *testing.T) {
	q := newIngestQueue(0, true)
	q.SealThrough(0)
	if _, err := q.ObservationsAt(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(obsAt(0, 2)); err != nil { // behind the frontier now
		t.Fatal(err)
	}
	if err := q.Push(obsAt(1, 1)); err != nil {
		t.Fatal(err)
	}
	q.SealThrough(1)
	got, err := q.ObservationsAt(context.Background(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Bucket != 0 || got[1].Bucket != 0 || got[2].Bucket != 1 {
		t.Fatalf("read = %+v, want the 2 stale bucket-0 records then the bucket-1 record", got)
	}
	if pending, _ := q.Depth(); pending != 0 {
		t.Fatalf("depth after drain = %d, want 0", pending)
	}
}

// TestQueueSkippedBucketsDiscarded: reads with non-decreasing buckets
// discard what the reader skipped (warmup subsampling), like a
// streaming replay.
func TestQueueSkippedBucketsDiscarded(t *testing.T) {
	q := newIngestQueue(0, true)
	for b := netmodel.Bucket(0); b < 4; b++ {
		if err := q.Push(obsAt(b, 2)); err != nil {
			t.Fatal(err)
		}
	}
	q.SealThrough(3)
	if _, err := q.ObservationsAt(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	got, err := q.ObservationsAt(context.Background(), 3, nil)
	if err != nil || len(got) != 2 {
		t.Fatalf("read bucket 3 = %d records, %v; want 2, nil", len(got), err)
	}
	if d := q.Discarded(); d != 4 {
		t.Fatalf("discarded = %d, want 4 (buckets 1 and 2)", d)
	}
}

// TestQueueCloseDrains: after Close, awaitBucket keeps reporting work
// while queued or stale records remain at or past the bucket, then
// reports the drain complete; Push fails with ErrClosed.
func TestQueueCloseDrains(t *testing.T) {
	q := newIngestQueue(0, true)
	if err := q.Push(obsAt(2, 1)); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if err := q.Push(obsAt(3, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close = %v, want ErrClosed", err)
	}
	ctx := context.Background()
	for _, b := range []netmodel.Bucket{0, 1, 2} {
		if !q.awaitBucket(ctx, b) {
			t.Fatalf("awaitBucket(%d) = false with bucket 2 still queued", b)
		}
		if _, err := q.ObservationsAt(ctx, b, nil); err != nil {
			t.Fatal(err)
		}
	}
	if q.awaitBucket(ctx, 3) {
		t.Fatal("awaitBucket(3) = true after the backlog drained")
	}
}

// TestQueueContextCancellation: a cancelled context unblocks waiting
// reads with the context error and awaitBucket with false.
func TestQueueContextCancellation(t *testing.T) {
	q := newIngestQueue(0, true)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := q.ObservationsAt(ctx, 0, nil)
		errc <- err
	}()
	okc := make(chan bool, 1)
	go func() { okc <- q.awaitBucket(ctx, 0) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked read returned %v, want context.Canceled", err)
	}
	if ok := <-okc; ok {
		t.Fatal("awaitBucket = true after cancellation")
	}
}
