package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// testEnv is one small-scale daemon under httptest. Two simulator
// instances are built from the same seeds: feed generates the trace the
// test POSTs (test goroutine only) and a separate instance serves the
// backend's active-phase probes — sharing one would interleave the
// engine's probe counters across goroutines.
type testEnv struct {
	srv  *Server
	ts   *httptest.Server
	feed *sim.Simulator
}

// testHorizon bounds fault and routing generation for the handler tests.
const testHorizon = netmodel.Bucket(netmodel.BucketsPerDay)

func newTestSim(workers int) *sim.Simulator {
	w := topology.Generate(topology.SmallScale(), 7)
	fs := faults.Generate(w, faults.DefaultGenerateConfig(), testHorizon, 8).Faults
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), testHorizon, 9)
	scfg := sim.DefaultConfig(10)
	scfg.Workers = workers
	return sim.New(w, tbl, faults.NewSchedule(fs), scfg)
}

// newTestEnv builds a server over the small world. mut edits the config
// before New; the zero edit runs with default limits, no warmup, and
// streaming (auto) seals.
func newTestEnv(t *testing.T, mut func(*Config)) *testEnv {
	t.Helper()
	probeSim := newTestSim(1)
	feed := newTestSim(1)
	pcfg := pipeline.DefaultConfig()
	pcfg.Workers = 1
	cfg := Config{Pipeline: pcfg}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(pipeline.Deps{
		World:  probeSim.World,
		Table:  probeSim.Routes,
		Prober: probe.NewEngine(probeSim, cfg.Pipeline.ProbeNoiseMS),
	}, cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		ts.Close()
	})
	return &testEnv{srv: srv, ts: ts, feed: feed}
}

// bucketObs generates bucket b's trace records from the feed simulator.
func (e *testEnv) bucketObs(b netmodel.Bucket) []trace.Observation {
	return e.feed.ObservationsAt(b, nil)
}

func jsonlBody(t *testing.T, obs []trace.Observation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, obs); err != nil {
		t.Fatalf("encoding observations: %v", err)
	}
	return buf.Bytes()
}

// post sends one request and returns the status code and body.
func (e *testEnv) post(t *testing.T, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := e.ts.Client().Post(e.ts.URL+path, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading POST %s response: %v", path, err)
	}
	return resp.StatusCode, b
}

func (e *testEnv) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := e.ts.Client().Get(e.ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading GET %s response: %v", path, err)
	}
	return resp.StatusCode, b
}

// metricsSnapshot fetches and decodes GET /metrics.
func (e *testEnv) metricsSnapshot(t *testing.T) (counters, gauges map[string]int64) {
	t.Helper()
	status, body := e.get(t, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", status)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	return snap.Counters, snap.Gauges
}

// health fetches and decodes GET /healthz.
func (e *testEnv) health(t *testing.T) (int, healthResponse) {
	t.Helper()
	status, body := e.get(t, "/healthz")
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("decoding /healthz: %v", err)
	}
	return status, h
}

func (e *testEnv) seal(t *testing.T, through netmodel.Bucket) {
	t.Helper()
	status, body := e.post(t, "/v1/seal", []byte(fmt.Sprintf(`{"through":%d}`, through)))
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/seal = %d (%s), want 202", status, body)
	}
}

// shutdown drains the server and fails the test on a backend error.
func (e *testEnv) shutdown(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// postWithRetry POSTs one ingest batch, retrying 429 backpressure until
// the backend drains — the loadgen's behavior.
func postWithRetry(t *testing.T, client *http.Client, url string, body []byte) {
	t.Helper()
	for {
		resp, err := client.Post(url, "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			time.Sleep(10 * time.Millisecond)
		case http.StatusAccepted:
			return
		default:
			t.Fatalf("POST %s = %d (%s), want 202", url, resp.StatusCode, bytes.TrimSpace(msg))
		}
	}
}

// postSeal advances the daemon's seal watermark through the bucket.
func postSeal(t *testing.T, client *http.Client, base string, through netmodel.Bucket) (int, []byte) {
	t.Helper()
	resp, err := client.Post(base+"/v1/seal", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"through":%d}`, through))))
	if err != nil {
		t.Fatalf("POST /v1/seal: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// collectCanonical rebuilds the canonical report stream from the read
// APIs: the /v1/reports index in publish order, each window's canonical
// bytes from /v1/reports/{bucket}. This is the byte stream equivalence
// with the batch CLI is graded on.
func collectCanonical(t *testing.T, client *http.Client, base string) []byte {
	t.Helper()
	resp, err := client.Get(base + "/v1/reports")
	if err != nil {
		t.Fatalf("GET /v1/reports: %v", err)
	}
	var sums []reportSummary
	err = json.NewDecoder(resp.Body).Decode(&sums)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decoding /v1/reports: %v", err)
	}
	var out bytes.Buffer
	for _, rs := range sums {
		r, err := client.Get(fmt.Sprintf("%s/v1/reports/%d", base, rs.To))
		if err != nil {
			t.Fatalf("GET /v1/reports/%d: %v", rs.To, err)
		}
		if r.StatusCode != http.StatusOK {
			r.Body.Close()
			t.Fatalf("GET /v1/reports/%d = %d, want 200", rs.To, r.StatusCode)
		}
		if _, err := io.Copy(&out, r.Body); err != nil {
			t.Fatalf("reading report %d: %v", rs.To, err)
		}
		r.Body.Close()
	}
	return out.Bytes()
}
