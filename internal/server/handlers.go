package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"blameit/internal/active"
	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/aggregates", s.handleAggregates)
	s.mux.HandleFunc("POST /v1/seal", s.handleSeal)
	s.mux.HandleFunc("GET /v1/verdicts", s.handleVerdicts)
	s.mux.HandleFunc("GET /v1/reports", s.handleReports)
	s.mux.HandleFunc("GET /v1/reports/{bucket}", s.handleReport)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// writeJSON renders one response body. Encoding failures at this point can
// only be programming errors; the status line has already been sent.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// retryAfterSeconds derives a 429 Retry-After hint from how full the
// admission budget is: an almost-drained queue invites a quick retry, a
// full one backs clients off harder. Linear in occupancy, clamped to
// [1, 8] seconds; a full queue answers 5.
func retryAfterSeconds(occupied, max int) string {
	if max <= 0 {
		return "1"
	}
	ra := 1 + 4*occupied/max
	if ra > 8 {
		ra = 8
	}
	return strconv.Itoa(ra)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// ingestResponse summarizes one accepted batch.
type ingestResponse struct {
	Accepted int `json:"accepted"`
	// Rejected counts salvage-mode lines diverted to the quarantine.
	Rejected int `json:"rejected,omitempty"`
}

// handleIngest accepts one JSONL observation batch. The body is bounded by
// MaxBatchBytes (413 beyond it); undecodable lines fail the whole batch
// with 400 unless ?mode=salvage routes them to the ingestion quarantine; a
// full queue answers 429 so clients back off; a draining server answers
// 503. Decoded records are enqueued atomically, in body order.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: ingestion is closed")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.mOversized.Inc()
			s.mRejected.Inc()
			writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d bytes", tooLarge.Limit)
			return
		}
		s.mRejected.Inc()
		writeError(w, http.StatusBadRequest, "reading batch: %v", err)
		return
	}
	salvage := r.URL.Query().Get("mode") == "salvage"
	var onBad func([]byte)
	rejected := 0
	if salvage {
		at := s.q.Watermark()
		onBad = func(line []byte) {
			rejected++
			s.frontMu.Lock()
			s.frontQuar.RejectLine(line, at)
			s.frontMu.Unlock()
		}
	}
	obs, err := ingest.DecodeBatch(body, nil, onBad)
	if err != nil {
		s.mRejected.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.q.Push(obs); err != nil {
		switch {
		case errors.Is(err, ErrBackpressure):
			s.mBackpress.Inc()
			pending, _ := s.q.Depth()
			w.Header().Set("Retry-After", retryAfterSeconds(pending, s.cfg.MaxPendingRecords))
			writeError(w, http.StatusTooManyRequests, "ingest queue full (%d records pending); retry after the backend drains", s.cfg.MaxPendingRecords)
		default:
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	s.mBatches.Inc()
	s.mRecords.Add(int64(len(obs)))
	pending, _ := s.q.Depth()
	s.gQueueDepth.Set(int64(pending))
	writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: len(obs), Rejected: rejected})
}

// sealRequest advances the seal watermark: every bucket <= Through becomes
// readable by the backend. The loadgen sends it after the final batch; a
// deployment whose collectors seal on wall-clock posts it on a timer.
type sealRequest struct {
	Through netmodel.Bucket `json:"through"`
}

type sealResponse struct {
	// Watermark is the lowest unsealed bucket after the seal.
	Watermark netmodel.Bucket `json:"watermark"`
}

func (s *Server) handleSeal(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading seal request: %v", err)
		return
	}
	var req sealRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding seal request: %v", err)
		return
	}
	if req.Through < 0 {
		writeError(w, http.StatusBadRequest, "seal through %d must be >= 0", req.Through)
		return
	}
	// Sealing a bucket completes it for the aggregate feed too: flush the
	// covered buffered aggregates before the watermark moves past them.
	if err := s.flushAggregates(req.Through); err != nil {
		pending, _ := s.q.Depth()
		w.Header().Set("Retry-After", retryAfterSeconds(pending, s.cfg.MaxPendingRecords))
		writeError(w, http.StatusTooManyRequests, "flushing buffered aggregates: %v; retry the seal after the backend drains", err)
		return
	}
	s.q.SealThrough(req.Through)
	s.mSeals.Inc()
	writeJSON(w, http.StatusAccepted, sealResponse{Watermark: s.q.Watermark()})
}

// verdictWindow is one report's active-phase verdicts with its window.
type verdictWindow struct {
	From     netmodel.Bucket  `json:"from"`
	To       netmodel.Bucket  `json:"to"`
	Verdicts []active.Verdict `json:"verdicts"`
}

// handleVerdicts returns the AS-level localizations of every retained
// report, oldest first. ?since=BUCKET keeps only windows ending at or
// after the bucket.
func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	since := netmodel.Bucket(-1)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since bucket %q", v)
			return
		}
		since = netmodel.Bucket(n)
	}
	out := []verdictWindow{}
	for _, sr := range s.reports.snapshot() {
		if sr.rep.To < since {
			continue
		}
		vs := sr.rep.Verdicts
		if vs == nil {
			vs = []active.Verdict{}
		}
		out = append(out, verdictWindow{From: sr.rep.From, To: sr.rep.To, Verdicts: vs})
	}
	writeJSON(w, http.StatusOK, out)
}

// reportSummary is one retained report's index entry.
type reportSummary struct {
	Seq      int64           `json:"seq"`
	From     netmodel.Bucket `json:"from"`
	To       netmodel.Bucket `json:"to"`
	Results  int             `json:"results"`
	Verdicts int             `json:"verdicts"`
	Tickets  int             `json:"tickets"`
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	out := []reportSummary{}
	for _, sr := range s.reports.snapshot() {
		out = append(out, reportSummary{
			Seq: sr.seq, From: sr.rep.From, To: sr.rep.To,
			Results: len(sr.rep.Results), Verdicts: len(sr.rep.Verdicts), Tickets: len(sr.rep.Tickets),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReport serves the canonical JSON of the report whose job window
// covers the requested bucket — the same bytes the batch CLI's replay
// equivalence is graded on.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("bucket")
	n, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad bucket %q", raw)
		return
	}
	sr, ok := s.reports.byBucket(netmodel.Bucket(n))
	if !ok {
		writeError(w, http.StatusNotFound, "no retained report covers bucket %d", n)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sr.canonical)
	_, _ = w.Write([]byte{'\n'})
}

// healthResponse is the service's liveness/data-plane summary. Status
// follows the latest report's Health grade (the transport's state, not the
// verdicts'): ok, degraded, or dark; "failed" when the backend died.
type healthResponse struct {
	Status       string           `json:"status"`
	Backend      string           `json:"backend"`
	Reports      int64            `json:"reports"`
	QueueDepth   int              `json:"queue_depth"`
	Ingested     int64            `json:"ingested"`
	Watermark    netmodel.Bucket  `json:"watermark"`
	LastWindowTo *netmodel.Bucket `json:"last_window_to,omitempty"`
	Health       *pipeline.Health `json:"health,omitempty"`
	FrontQuar    int64            `json:"frontend_quarantined,omitempty"`
	// WAL is present only when the daemon runs with a data directory, so
	// durability-free deployments keep their exact response shape.
	WAL *WALHealth `json:"wal,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "ok", Backend: "running"}
	select {
	case <-s.done:
		if err := s.Err(); err != nil {
			resp.Backend = "failed: " + err.Error()
		} else {
			resp.Backend = "stopped"
		}
	default:
		if s.draining.Load() {
			resp.Backend = "draining"
		}
	}
	resp.QueueDepth, resp.Ingested = s.q.Depth()
	resp.Watermark = s.q.Watermark()
	resp.Reports = s.reports.count()
	if s.wal != nil {
		resp.WAL = s.wal.health()
	}
	s.frontMu.Lock()
	resp.FrontQuar = s.frontQuar.Total()
	s.frontMu.Unlock()
	if sr, ok := s.reports.latest(); ok {
		h := sr.rep.Health
		to := sr.rep.To
		resp.Health = &h
		resp.LastWindowTo = &to
		switch {
		case h.Source == pipeline.Dark || h.Prober == pipeline.Dark:
			resp.Status = "dark"
		case h.Source == pipeline.Degraded || h.Prober == pipeline.Degraded:
			resp.Status = "degraded"
		}
	}
	status := http.StatusOK
	if resp.Status == "dark" || s.Err() != nil {
		resp.Status = "dark"
		if s.Err() != nil {
			resp.Status = "failed"
		}
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// handleMetrics serves the pipeline registry's deterministic JSON
// snapshot — every counter, gauge, and histogram of the ingestion, job,
// probing, and serving layers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := s.reg.Snapshot().WriteJSON(w); err != nil {
		// The status line is gone; nothing useful to do but drop the conn.
		return
	}
}
