package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// TestIngestValidBatch: a well-formed JSONL batch is accepted atomically
// and accounted in the serving metrics and health snapshot.
func TestIngestValidBatch(t *testing.T) {
	e := newTestEnv(t, nil)
	obs := e.bucketObs(0)
	if len(obs) == 0 {
		t.Fatal("bucket 0 generated no observations")
	}
	status, body := e.post(t, "/v1/ingest", jsonlBody(t, obs))
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/ingest = %d (%s), want 202", status, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("decoding ingest response: %v", err)
	}
	if ir.Accepted != len(obs) || ir.Rejected != 0 {
		t.Fatalf("ingest response = %+v, want accepted=%d rejected=0", ir, len(obs))
	}
	counters, _ := e.metricsSnapshot(t)
	if got := counters["server.ingest.batches"]; got != 1 {
		t.Errorf("server.ingest.batches = %d, want 1", got)
	}
	if got := counters["server.ingest.records"]; got != int64(len(obs)) {
		t.Errorf("server.ingest.records = %d, want %d", got, len(obs))
	}
	hs, h := e.health(t)
	if hs != http.StatusOK || h.Status != "ok" || h.Backend != "running" {
		t.Errorf("healthz = %d %q/%q, want 200 ok/running", hs, h.Status, h.Backend)
	}
	// Bucket 0 is unsealed (no later record arrived), so everything is
	// still queued.
	if h.QueueDepth != len(obs) || h.Ingested != int64(len(obs)) {
		t.Errorf("healthz queue_depth=%d ingested=%d, want %d/%d", h.QueueDepth, h.Ingested, len(obs), len(obs))
	}
}

// TestIngestMethodNotAllowed: the method-scoped routes answer 405, not a
// panic or a 404.
func TestIngestMethodNotAllowed(t *testing.T) {
	e := newTestEnv(t, nil)
	status, _ := e.get(t, "/v1/ingest")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/ingest = %d, want 405", status)
	}
	resp, err := e.ts.Client().Post(e.ts.URL+"/v1/verdicts", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/verdicts = %d, want 405", resp.StatusCode)
	}
}

// TestIngestMalformedStrict: one undecodable line fails the whole batch
// with 400 and nothing is enqueued — strict mode is atomic.
func TestIngestMalformedStrict(t *testing.T) {
	e := newTestEnv(t, nil)
	good := jsonlBody(t, e.bucketObs(0)[:1])
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"garbage line", append(append([]byte{}, good...), []byte("not json at all\n")...)},
		{"truncated record", []byte(`{"prefix":1,"cloud":0,"device":0,"bucket":0,"sam`)},
		{"nan rtt", []byte(`{"prefix":1,"cloud":0,"device":0,"bucket":0,"samples":9,"mean_rtt_ms":NaN,"clients":3}` + "\n")},
		{"binary junk", []byte{0xff, 0xfe, 0x00, 0x01, '\n'}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, body := e.post(t, "/v1/ingest", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("POST = %d (%s), want 400", status, body)
			}
		})
	}
	counters, _ := e.metricsSnapshot(t)
	if got := counters["server.ingest.rejected_batches"]; got != 4 {
		t.Errorf("server.ingest.rejected_batches = %d, want 4", got)
	}
	_, h := e.health(t)
	if h.QueueDepth != 0 || h.Ingested != 0 {
		t.Errorf("queue after strict rejections: depth=%d ingested=%d, want 0/0", h.QueueDepth, h.Ingested)
	}
}

// TestIngestSalvageMode: ?mode=salvage diverts undecodable lines to the
// ingestion quarantine and keeps the decodable remainder.
func TestIngestSalvageMode(t *testing.T) {
	e := newTestEnv(t, nil)
	obs := e.bucketObs(0)
	var body bytes.Buffer
	body.Write(jsonlBody(t, obs[:1]))
	body.WriteString("### corrupted by the collector ###\n")
	body.Write(jsonlBody(t, obs[1:2]))
	body.WriteString(`{"prefix":1,"cloud":0,"device":0,"bucket":0,"trunc`)

	status, resp := e.post(t, "/v1/ingest?mode=salvage", body.Bytes())
	if status != http.StatusAccepted {
		t.Fatalf("POST salvage = %d (%s), want 202", status, resp)
	}
	var ir ingestResponse
	if err := json.Unmarshal(resp, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 2 || ir.Rejected != 2 {
		t.Fatalf("salvage response = %+v, want accepted=2 rejected=2", ir)
	}
	counters, _ := e.metricsSnapshot(t)
	if got := counters["ingest.quarantine.malformed"]; got != 2 {
		t.Errorf("ingest.quarantine.malformed = %d, want 2", got)
	}
	_, h := e.health(t)
	if h.FrontQuar != 2 {
		t.Errorf("healthz frontend_quarantined = %d, want 2", h.FrontQuar)
	}
	if h.QueueDepth != 2 {
		t.Errorf("healthz queue_depth = %d, want 2", h.QueueDepth)
	}
}

// TestIngestOversizedBatch: bodies beyond MaxBatchBytes answer 413.
func TestIngestOversizedBatch(t *testing.T) {
	e := newTestEnv(t, func(c *Config) { c.MaxBatchBytes = 256 })
	obs := e.bucketObs(0)
	body := jsonlBody(t, obs)
	if len(body) <= 256 {
		t.Fatalf("bucket 0 body is %d bytes; need > 256 to exercise the limit", len(body))
	}
	status, resp := e.post(t, "/v1/ingest", body)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST = %d (%s), want 413", status, resp)
	}
	counters, _ := e.metricsSnapshot(t)
	if got := counters["server.ingest.oversized"]; got != 1 {
		t.Errorf("server.ingest.oversized = %d, want 1", got)
	}
	_, h := e.health(t)
	if h.QueueDepth != 0 {
		t.Errorf("queue_depth = %d after a 413, want 0", h.QueueDepth)
	}
}

// TestIngestBackpressure: a batch that would overflow MaxPendingRecords
// answers 429 with Retry-After, enqueues nothing, and leaves the earlier
// batch intact — whole-batch admission.
func TestIngestBackpressure(t *testing.T) {
	e := newTestEnv(t, func(c *Config) {
		c.MaxPendingRecords = 4
		c.ManualSeal = true // the backend never consumes: the queue stays full
	})
	obs := e.bucketObs(0)
	if len(obs) < 6 {
		t.Fatalf("bucket 0 has %d observations; need >= 6", len(obs))
	}
	if status, body := e.post(t, "/v1/ingest", jsonlBody(t, obs[:3])); status != http.StatusAccepted {
		t.Fatalf("first POST = %d (%s), want 202", status, body)
	}
	resp, err := e.ts.Client().Post(e.ts.URL+"/v1/ingest", "application/x-ndjson", bytes.NewReader(jsonlBody(t, obs[3:6])))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response carries no Retry-After header")
	}
	counters, _ := e.metricsSnapshot(t)
	if got := counters["server.ingest.backpressure"]; got != 1 {
		t.Errorf("server.ingest.backpressure = %d, want 1", got)
	}
	_, h := e.health(t)
	if h.QueueDepth != 3 {
		t.Errorf("queue_depth = %d after the refused batch, want 3", h.QueueDepth)
	}
}

// TestIngestCorruptRecordsQuarantined: records that decode but carry
// values no collector can emit — the chaos corruption shapes — pass the
// frontend and are quarantined as corrupt by the backend at step time,
// without failing the step or fabricating an error.
func TestIngestCorruptRecordsQuarantined(t *testing.T) {
	e := newTestEnv(t, nil)
	obs := e.bucketObs(0)
	if len(obs) < 4 {
		t.Fatalf("bucket 0 has %d observations; need >= 4", len(obs))
	}
	numPrefixes := netmodel.PrefixID(len(e.feed.World.Prefixes))
	corrupt := []trace.Observation{obs[0], obs[1], obs[2], obs[3]}
	corrupt[0].MeanRTT = -5         // negative RTT
	corrupt[1].Samples = -1         // negative sample count
	corrupt[2].Clients = -3         // negative client count
	corrupt[3].Prefix = numPrefixes // prefix outside the world
	batch := append(append([]trace.Observation{}, obs...), corrupt...)

	if status, body := e.post(t, "/v1/ingest", jsonlBody(t, batch)); status != http.StatusAccepted {
		t.Fatalf("POST = %d (%s), want 202", status, body)
	}
	e.seal(t, 0)
	e.shutdown(t) // drains: bucket 0 is stepped and the window flushed

	counters, _ := e.metricsSnapshot(t)
	if got := counters["ingest.quarantine.corrupt"]; got != 4 {
		t.Errorf("ingest.quarantine.corrupt = %d, want 4", got)
	}
	if q := e.srv.Pipeline().Quarantine(); q.Total() != 4 {
		t.Errorf("pipeline quarantine total = %d (%s), want 4", q.Total(), q)
	}
	if status, _ := e.get(t, "/v1/reports/0"); status != http.StatusOK {
		t.Errorf("GET /v1/reports/0 after drain = %d, want 200", status)
	}
}

// TestIngestLateRecordsQuarantined: records arriving for a bucket the
// backend already consumed are delivered with the next read and rejected
// as late — the chaos late-delivery path, over HTTP.
func TestIngestLateRecordsQuarantined(t *testing.T) {
	e := newTestEnv(t, nil)
	obs0, obs1 := e.bucketObs(0), e.bucketObs(1)
	var first bytes.Buffer
	first.Write(jsonlBody(t, obs0))
	first.Write(jsonlBody(t, obs1))
	if status, body := e.post(t, "/v1/ingest", first.Bytes()); status != http.StatusAccepted {
		t.Fatalf("POST = %d (%s), want 202", status, body)
	}
	// The bucket-1 arrivals sealed bucket 0; wait until the backend has
	// consumed it, leaving exactly bucket 1 pending.
	waitFor(t, "backend to consume bucket 0", func() bool {
		_, h := e.health(t)
		return h.QueueDepth == len(obs1)
	})
	// Now bucket 0 is behind the frontier: these records are late.
	if status, body := e.post(t, "/v1/ingest", jsonlBody(t, obs0)); status != http.StatusAccepted {
		t.Fatalf("late POST = %d (%s), want 202", status, body)
	}
	e.seal(t, 1)
	e.shutdown(t)

	counters, _ := e.metricsSnapshot(t)
	if got := counters["ingest.quarantine.late"]; got != int64(len(obs0)) {
		t.Errorf("ingest.quarantine.late = %d, want %d", got, len(obs0))
	}
}

// TestReadEndpointErrors: malformed read requests get 400/404 JSON
// errors, never a panic.
func TestReadEndpointErrors(t *testing.T) {
	e := newTestEnv(t, nil)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/reports/abc", http.StatusBadRequest},
		{"/v1/reports/12345", http.StatusNotFound},
		{"/v1/verdicts?since=zzz", http.StatusBadRequest},
		{"/v1/verdicts", http.StatusOK},
		{"/v1/reports", http.StatusOK},
	} {
		if status, body := e.get(t, tc.path); status != tc.want {
			t.Errorf("GET %s = %d (%s), want %d", tc.path, status, body, tc.want)
		}
	}
	for _, body := range []string{`{bad json`, `{"through":-3}`, ``} {
		if status, resp := e.post(t, "/v1/seal", []byte(body)); status != http.StatusBadRequest {
			t.Errorf("POST /v1/seal %q = %d (%s), want 400", body, status, resp)
		}
	}
}

// TestVerdictsSinceFilter: ?since= keeps only windows ending at or after
// the bucket.
func TestVerdictsSinceFilter(t *testing.T) {
	e := newTestEnv(t, nil)
	var batch bytes.Buffer
	for b := netmodel.Bucket(0); b <= 6; b++ {
		batch.Write(jsonlBody(t, e.bucketObs(b)))
	}
	if status, body := e.post(t, "/v1/ingest", batch.Bytes()); status != http.StatusAccepted {
		t.Fatalf("POST = %d (%s), want 202", status, body)
	}
	e.seal(t, 6)
	e.shutdown(t) // reports at buckets 2 and 5, plus the flushed [6,6]

	var all, since []verdictWindow
	_, body := e.get(t, "/v1/verdicts")
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("verdict windows = %d, want 3 (buckets 0-2, 3-5, 6)", len(all))
	}
	_, body = e.get(t, fmt.Sprintf("/v1/verdicts?since=%d", 5))
	if err := json.Unmarshal(body, &since); err != nil {
		t.Fatal(err)
	}
	if len(since) != 2 || since[0].To != 5 {
		t.Fatalf("since=5 windows = %+v, want the 3-5 and 6-6 windows", since)
	}
}
