package server

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/fleet"
	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/quartet"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

// aggBody flattens partials into one JSONL aggregate batch.
func aggBody(t *testing.T, parts ...*quartet.Partial) []byte {
	t.Helper()
	var cells []ingest.AggCell
	for _, p := range parts {
		cells = ingest.AggCellsOf(p, cells)
	}
	var buf bytes.Buffer
	if err := ingest.WriteAggJSONL(&buf, cells); err != nil {
		t.Fatalf("encoding aggregate cells: %v", err)
	}
	return buf.Bytes()
}

// partialOf pre-aggregates a bucket's observations into one partial.
func partialOf(id quartet.PartialID, b netmodel.Bucket, obs []trace.Observation) *quartet.Partial {
	p := quartet.NewPartial(id, b)
	for _, o := range obs {
		p.Observe(o)
	}
	return p
}

// TestAggregateIngest exercises the /v1/aggregates endpoint surface:
// accepted batches report their partial/cell counts, redelivered
// partials are deduplicated, undecodable lines follow the strict/salvage
// split, and the books land in the server.aggregates.* counters.
func TestAggregateIngest(t *testing.T) {
	e := newTestEnv(t, nil)
	obs0 := e.bucketObs(0)
	obs1 := e.bucketObs(1)
	if len(obs0) == 0 || len(obs1) == 0 {
		t.Fatal("feed produced empty buckets")
	}
	half := len(obs0) / 2
	p0a := partialOf(quartet.PartialID{Agent: 0, Epoch: 0, Seq: 1}, 0, obs0[:half])
	p0b := partialOf(quartet.PartialID{Agent: 1, Epoch: 0, Seq: 1}, 0, obs0[half:])
	p1 := partialOf(quartet.PartialID{Agent: 0, Epoch: 0, Seq: 2}, 1, obs1)

	status, body := e.post(t, "/v1/aggregates", aggBody(t, p0a, p0b))
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/aggregates = %d (%s), want 202", status, body)
	}
	// Redelivering agent 0's partial alongside bucket 1 must dedup it.
	status, body = e.post(t, "/v1/aggregates", aggBody(t, p1, p0a))
	if status != http.StatusAccepted {
		t.Fatalf("redelivery POST = %d (%s), want 202", status, body)
	}
	if !bytes.Contains(body, []byte(`"deduped":1`)) {
		t.Errorf("redelivery response %s does not count the deduplicated partial", body)
	}

	// Strict mode rejects a batch with a mangled line outright...
	bad := append(aggBody(t, p1), []byte("{\"agent\":notjson}\n")...)
	if status, _ := e.post(t, "/v1/aggregates", bad); status != http.StatusBadRequest {
		t.Errorf("strict-mode bad line = %d, want 400", status)
	}
	// ...salvage mode quarantines the line and keeps the batch.
	status, body = e.post(t, "/v1/aggregates?mode=salvage", bad)
	if status != http.StatusAccepted {
		t.Fatalf("salvage-mode POST = %d (%s), want 202", status, body)
	}
	if !bytes.Contains(body, []byte(`"rejected":1`)) {
		t.Errorf("salvage response %s does not count the rejected line", body)
	}

	e.seal(t, 1)
	waitFor(t, "aggregate buckets stepped", func() bool {
		_, pushed := e.srv.q.Depth()
		return pushed > 0 && func() bool { c, _ := e.srv.aggStats(); return c == 0 }()
	})
	e.shutdown(t)

	counters, _ := e.metricsSnapshot(t)
	// Three accepted batches; the strict reject counts separately. The
	// redeliveries (p0a in batch 2, p1 in the salvage batch) both hit
	// still-buffered buckets and dedup.
	wantCounters := map[string]int64{
		"server.aggregates.batches":          3,
		"server.aggregates.rejected_batches": 1,
		"server.aggregates.partials":         3,
		"server.aggregates.deduped":          2,
		"server.aggregates.cells":            int64(len(obs0) + half + 2*len(obs1)),
		"server.aggregates.flushed_records":  int64(len(obs0) + len(obs1)),
		"ingest.quarantine.malformed":        1,
	}
	for name, want := range wantCounters {
		if got := counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
}

// aggReplaySimFor builds the small-scale aggregate-equivalence workload;
// each caller gets a fresh instance from the same seeds.
func aggReplaySimFor(workers int) *sim.Simulator {
	w := topology.Generate(topology.SmallScale(), 7)
	fs := faults.Generate(w, faults.DefaultGenerateConfig(), replayHorizon, 8).Faults
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), replayHorizon, 9)
	scfg := sim.DefaultConfig(10)
	scfg.Workers = workers
	return sim.New(w, tbl, faults.NewSchedule(fs), scfg)
}

// TestServiceAggregateEquivalence is the HTTP leg of the fleet
// equivalence property: a fleet's per-agent partial batches POSTed to
// /v1/aggregates in a fully shuffled order — across agents AND buckets,
// with redelivered duplicates mixed in — must produce reports
// byte-identical to the batch CLI's run over the same telemetry. Manual
// sealing holds every bucket open until the end, so arrival order
// carries no information at all; the canonical merge is what restores
// the stream.
func TestServiceAggregateEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate service equivalence in -short mode")
	}
	const agents = 4

	// Reference: the batch CLI's live run.
	cfg := pipeline.DefaultConfig()
	cfg.Workers = 1
	p := pipeline.NewSim(aggReplaySimFor(1), cfg)
	if err := p.Warmup(0, replayWarmup); err != nil {
		t.Fatalf("batch warmup: %v", err)
	}
	var want bytes.Buffer
	err := p.Run(replayWarmup, replayHorizon, func(rep *pipeline.Report) {
		buf, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("canonicalize report: %v", err)
		}
		want.Write(buf)
		want.WriteByte('\n')
	})
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	if want.Len() == 0 {
		t.Fatal("batch run produced no reports")
	}

	// The fleet's batches: one per (agent, bucket) partial.
	feed := aggReplaySimFor(1)
	fl := fleet.New(feed, agents)
	var batches [][]byte
	for b := netmodel.Bucket(0); b < replayHorizon; b++ {
		for _, ag := range fl.Agents {
			batches = append(batches, aggBody(t, ag.Collect(b)))
		}
	}
	rng := rand.New(rand.NewSource(11))
	rng.Shuffle(len(batches), func(i, j int) { batches[i], batches[j] = batches[j], batches[i] })
	// Sprinkle duplicates: every 50th batch is delivered twice.
	dups := 0
	for i := 0; i < len(batches); i += 50 {
		batches = append(batches, batches[i])
		dups++
	}

	probeSim := aggReplaySimFor(1)
	pcfg := pipeline.DefaultConfig()
	pcfg.Workers = 1
	srv, err := New(pipeline.Deps{
		World:  probeSim.World,
		Table:  probeSim.Routes,
		Prober: probe.NewEngine(probeSim, pcfg.ProbeNoiseMS),
	}, Config{
		Pipeline:      pcfg,
		WarmupBuckets: replayWarmup,
		ManualSeal:    true,
		// The whole run stays buffered until the final seal.
		MaxPendingRecords: 64 << 20,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	for _, body := range batches {
		postWithRetry(t, client, ts.URL+"/v1/aggregates", body)
	}
	if status, body := postSeal(t, client, ts.URL, replayHorizon-1); status != 202 {
		t.Fatalf("seal = %d (%s), want 202", status, body)
	}
	e := &testEnv{srv: srv, ts: ts}
	e.shutdown(t)

	got := collectCanonical(t, client, ts.URL)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("shuffled fleet-over-HTTP reports diverged from the batch run: %d vs %d canonical bytes", len(got), want.Len())
	}
	counters, _ := e.metricsSnapshot(t)
	if got := counters["server.aggregates.deduped"]; got != int64(dups) {
		t.Errorf("deduped %d redelivered partials, want %d", got, dups)
	}
	if got, want := counters["server.aggregates.partials"], int64(len(batches)-dups); got != want {
		t.Errorf("merged %d partials, want %d", got, want)
	}
}
