package server

import (
	"context"
	"errors"
	"sync"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// Errors the frontend maps to HTTP status codes.
var (
	// ErrBackpressure means the queue is at capacity; the client should
	// retry after the backend drains (HTTP 429).
	ErrBackpressure = errors.New("server: ingest queue full")
	// ErrClosed means the server is draining and accepts no more records
	// (HTTP 503).
	ErrClosed = errors.New("server: ingest queue closed")
)

// ingestQueue is the seam between the HTTP frontend and the pipeline
// backend: handlers Push record batches into per-bucket pending buffers,
// and the backend reads them out through the ingest.ObservationSource
// interface — the same interface a file replay or a live simulator feeds
// the pipeline through, which is what keeps the daemon byte-equivalent to
// the batch CLI.
//
// A bucket becomes readable when it SEALS. In the streaming mode (the
// default), a record for bucket X seals every bucket below X — the
// watermark discipline of a bucket-ordered trace replay. SealThrough
// advances the watermark explicitly (the loadgen's final seal, or a
// deployment that seals on wall-clock). Closing the queue seals everything
// still pending, so a draining backend steps the remaining buckets and
// stops.
//
// Ordering: within a bucket, records are served in arrival order (Push
// appends under the lock), which is the order-equivalence contract of
// ObservationSource. Records arriving for a bucket the backend has already
// consumed are held and delivered with the next read, where the pipeline's
// quarantine rejects them as late — exactly how a chaos-injected late
// batch is treated. Records for buckets the backend skipped over (warmup
// subsampling) are discarded, as a streaming replay discards them.
type ingestQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	pending map[netmodel.Bucket][]trace.Observation
	// stale holds arrivals for already-consumed buckets until the next
	// read flushes them into the pipeline's late-record quarantine path.
	stale []trace.Observation

	// frontier is the next bucket the backend will read; every bucket
	// below it has been consumed or skipped.
	frontier netmodel.Bucket
	// watermark is the lowest unsealed bucket: reads for b < watermark
	// proceed, reads at or above it block.
	watermark netmodel.Bucket

	records    int // pending + stale records, for backpressure
	maxRecords int // 0 = unbounded
	manualSeal bool
	closed     bool

	discarded int64 // records dropped for skipped (subsampled) buckets
	pushed    int64 // records accepted over the queue's lifetime
}

func newIngestQueue(maxRecords int, manualSeal bool) *ingestQueue {
	q := &ingestQueue{
		pending:    make(map[netmodel.Bucket][]trace.Observation),
		maxRecords: maxRecords,
		manualSeal: manualSeal,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues one decoded batch. The whole batch is accepted or refused:
// over capacity returns ErrBackpressure (nothing enqueued), after Close
// returns ErrClosed.
func (q *ingestQueue) Push(obs []trace.Observation) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.maxRecords > 0 && q.records+len(obs) > q.maxRecords {
		return ErrBackpressure
	}
	for _, o := range obs {
		if o.Bucket < q.frontier {
			q.stale = append(q.stale, o)
			continue
		}
		q.pending[o.Bucket] = append(q.pending[o.Bucket], o)
		if !q.manualSeal && o.Bucket > q.watermark {
			q.watermark = o.Bucket
		}
	}
	q.records += len(obs)
	q.pushed += int64(len(obs))
	q.cond.Broadcast()
	return nil
}

// SealThrough marks every bucket up to and including b as sealed, letting
// the backend read them even though no later record has arrived. The
// watermark never regresses.
func (q *ingestQueue) SealThrough(b netmodel.Bucket) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if b+1 > q.watermark {
		q.watermark = b + 1
	}
	q.cond.Broadcast()
}

// Close stops ingestion and seals everything pending: Push fails with
// ErrClosed, blocked reads return, and awaitBucket reports done once the
// backlog is drained.
func (q *ingestQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Depth reports the queued record count and the accepted total.
func (q *ingestQueue) Depth() (pending int, pushed int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.records, q.pushed
}

// Discarded reports records dropped for buckets the backend skipped.
func (q *ingestQueue) Discarded() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.discarded
}

// Watermark returns the lowest unsealed bucket.
func (q *ingestQueue) Watermark() netmodel.Bucket {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.watermark
}

// maxQueuedLocked returns the highest bucket with pending records, or -1.
func (q *ingestQueue) maxQueuedLocked() netmodel.Bucket {
	max := netmodel.Bucket(-1)
	for b := range q.pending {
		if b > max {
			max = b
		}
	}
	return max
}

// discardBelowLocked drops pending buckets below b — the backend skipped
// them (warmup subsampling) and a streaming source discards skipped
// records rather than serving them late.
func (q *ingestQueue) discardBelowLocked(b netmodel.Bucket) {
	for pb, obs := range q.pending {
		if pb < b {
			q.records -= len(obs)
			q.discarded += int64(len(obs))
			delete(q.pending, pb)
		}
	}
}

// awaitBucket blocks until bucket b is sealed (returns true: step it) or
// the queue is closed and nothing at or past b remains (returns false: the
// drain is complete). After Close it keeps returning true while records at
// or past b — or held stale records — remain, so a draining backend
// flushes the in-flight buckets instead of abandoning them. Cancelling ctx
// returns false immediately.
func (q *ingestQueue) awaitBucket(ctx context.Context, b netmodel.Bucket) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	stop := context.AfterFunc(ctx, q.cond.Broadcast)
	defer stop()
	for {
		if ctx.Err() != nil {
			return false
		}
		if b < q.watermark {
			return true
		}
		if q.closed {
			return q.maxQueuedLocked() >= b || len(q.stale) > 0
		}
		q.cond.Wait()
	}
}

// ObservationsAt implements ingest.ObservationSource: it serves bucket b's
// records in arrival order, preceded by any held stale records (the
// pipeline's quarantine rejects those as late). It blocks until b seals,
// the queue closes, or ctx is cancelled; the pipeline's warmup and step
// loops call it with non-decreasing buckets, discarding skipped ones.
func (q *ingestQueue) ObservationsAt(ctx context.Context, b netmodel.Bucket, buf []trace.Observation) ([]trace.Observation, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.discardBelowLocked(b)
	stop := context.AfterFunc(ctx, q.cond.Broadcast)
	defer stop()
	for b >= q.watermark && !q.closed && ctx.Err() == nil {
		q.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return buf, err
	}
	buf = append(buf, q.stale...)
	buf = append(buf, q.pending[b]...)
	q.records -= len(q.stale) + len(q.pending[b])
	q.stale = q.stale[:0]
	delete(q.pending, b)
	if b+1 > q.frontier {
		q.frontier = b + 1
	}
	q.cond.Broadcast()
	return buf, nil
}
