package server

import (
	"context"
	"errors"
	"sync"

	"blameit/internal/netmodel"
	"blameit/internal/trace"
)

// Errors the frontend maps to HTTP status codes.
var (
	// ErrBackpressure means the queue is at capacity; the client should
	// retry after the backend drains (HTTP 429).
	ErrBackpressure = errors.New("server: ingest queue full")
	// ErrClosed means the server is draining and accepts no more records
	// (HTTP 503).
	ErrClosed = errors.New("server: ingest queue closed")
)

// ingestQueue is the seam between the HTTP frontend and the pipeline
// backend: handlers Push record batches into per-bucket pending buffers,
// and the backend reads them out through the ingest.ObservationSource
// interface — the same interface a file replay or a live simulator feeds
// the pipeline through, which is what keeps the daemon byte-equivalent to
// the batch CLI.
//
// A bucket becomes readable when it SEALS. In the streaming mode (the
// default), a record for bucket X seals every bucket below X — the
// watermark discipline of a bucket-ordered trace replay. SealThrough
// advances the watermark explicitly (the loadgen's final seal, or a
// deployment that seals on wall-clock). Closing the queue seals everything
// still pending, so a draining backend steps the remaining buckets and
// stops.
//
// Ordering: within a bucket, records are served in arrival order (Push
// appends under the lock), which is the order-equivalence contract of
// ObservationSource. Records arriving for a bucket the backend has already
// consumed are held and delivered with the next read, where the pipeline's
// quarantine rejects them as late — exactly how a chaos-injected late
// batch is treated. Records for buckets the backend skipped over (warmup
// subsampling) are discarded, as a streaming replay discards them.
// queueJournal receives the queue's externally visible events for the
// durability layer: accepted batches in push order, explicit seals, and
// the exact per-bucket streams served to the backend. Calls happen under
// the queue lock, so journal order IS queue order — which is what makes
// replaying the journal reconstruct the queue's behavior exactly. The
// journal is best-effort: implementations absorb their own errors
// (degrading durability loudly) rather than failing the data plane.
type queueJournal interface {
	journalBatch(obs []trace.Observation)
	journalSeal(through netmodel.Bucket)
	journalBucket(b netmodel.Bucket, obs []trace.Observation)
}

type ingestQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	// jrn, when non-nil, journals accepted batches, seals, and consumed
	// buckets. It is nil during recovery replay — replayed events are
	// already in the journal — and installed via setJournal once the
	// replay has caught up.
	jrn queueJournal

	pending map[netmodel.Bucket][]trace.Observation
	// stale holds arrivals for already-consumed buckets until the next
	// read flushes them into the pipeline's late-record quarantine path.
	stale []trace.Observation

	// frontier is the next bucket the backend will read; every bucket
	// below it has been consumed or skipped.
	frontier netmodel.Bucket
	// watermark is the lowest unsealed bucket: reads for b < watermark
	// proceed, reads at or above it block.
	watermark netmodel.Bucket
	// stepped is the highest bucket the backend has fully stepped AND
	// published (markStepped); recovery's replay barriers wait on it.
	stepped netmodel.Bucket

	records    int // pending + stale records, for backpressure
	maxRecords int // 0 = unbounded
	manualSeal bool
	closed     bool

	discarded int64 // records dropped for skipped (subsampled) buckets
	pushed    int64 // records accepted over the queue's lifetime
}

func newIngestQueue(maxRecords int, manualSeal bool) *ingestQueue {
	q := &ingestQueue{
		pending:    make(map[netmodel.Bucket][]trace.Observation),
		maxRecords: maxRecords,
		manualSeal: manualSeal,
		stepped:    -1,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues one decoded batch. The whole batch is accepted or refused:
// over capacity returns ErrBackpressure (nothing enqueued), after Close
// returns ErrClosed.
func (q *ingestQueue) Push(obs []trace.Observation) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.maxRecords > 0 && q.records+len(obs) > q.maxRecords {
		return ErrBackpressure
	}
	if q.jrn != nil {
		// Journal before the in-memory accept so an acknowledged batch is
		// at least as durable as the fsync policy promises.
		q.jrn.journalBatch(obs)
	}
	q.pushLocked(obs)
	return nil
}

// pushRecovered enqueues a batch replayed from the journal: no capacity
// check (the records were accepted once already and must not be dropped
// now) and no re-journaling.
func (q *ingestQueue) pushRecovered(obs []trace.Observation) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.pushLocked(obs)
}

func (q *ingestQueue) pushLocked(obs []trace.Observation) {
	for _, o := range obs {
		if o.Bucket < q.frontier {
			q.stale = append(q.stale, o)
			continue
		}
		q.pending[o.Bucket] = append(q.pending[o.Bucket], o)
		if !q.manualSeal && o.Bucket > q.watermark {
			q.watermark = o.Bucket
		}
	}
	q.records += len(obs)
	q.pushed += int64(len(obs))
	q.cond.Broadcast()
}

// SealThrough marks every bucket up to and including b as sealed, letting
// the backend read them even though no later record has arrived. The
// watermark never regresses.
func (q *ingestQueue) SealThrough(b netmodel.Bucket) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.jrn != nil {
		q.jrn.journalSeal(b)
	}
	q.sealThroughLocked(b)
}

// sealRecovered replays a journaled seal without re-journaling it.
func (q *ingestQueue) sealRecovered(b netmodel.Bucket) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sealThroughLocked(b)
}

func (q *ingestQueue) sealThroughLocked(b netmodel.Bucket) {
	if b+1 > q.watermark {
		q.watermark = b + 1
	}
	q.cond.Broadcast()
}

// setJournal installs the journal once recovery replay has caught up.
func (q *ingestQueue) setJournal(j queueJournal) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.jrn = j
}

// awaitFrontier blocks until the backend has consumed every bucket below
// b (or ctx is cancelled / the queue closed). Recovery replays one
// journaled bucket at a time and waits for the backend to drain it before
// feeding the next, so consumption order reproduces the journal exactly.
func (q *ingestQueue) awaitFrontier(ctx context.Context, b netmodel.Bucket) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	stop := context.AfterFunc(ctx, q.cond.Broadcast)
	defer stop()
	for q.frontier < b && !q.closed && ctx.Err() == nil {
		q.cond.Wait()
	}
	return q.frontier >= b
}

// Close stops ingestion and seals everything pending: Push fails with
// ErrClosed, blocked reads return, and awaitBucket reports done once the
// backlog is drained.
func (q *ingestQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Depth reports the queued record count and the accepted total.
func (q *ingestQueue) Depth() (pending int, pushed int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.records, q.pushed
}

// Discarded reports records dropped for buckets the backend skipped.
func (q *ingestQueue) Discarded() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.discarded
}

// Watermark returns the lowest unsealed bucket.
func (q *ingestQueue) Watermark() netmodel.Bucket {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.watermark
}

// maxQueuedLocked returns the highest bucket with pending records, or -1.
func (q *ingestQueue) maxQueuedLocked() netmodel.Bucket {
	max := netmodel.Bucket(-1)
	for b := range q.pending {
		if b > max {
			max = b
		}
	}
	return max
}

// discardBelowLocked drops pending buckets below b — the backend skipped
// them (warmup subsampling) and a streaming source discards skipped
// records rather than serving them late.
func (q *ingestQueue) discardBelowLocked(b netmodel.Bucket) {
	for pb, obs := range q.pending {
		if pb < b {
			q.records -= len(obs)
			q.discarded += int64(len(obs))
			delete(q.pending, pb)
		}
	}
}

// awaitBucket blocks until bucket b is sealed (returns true: step it) or
// the queue is closed and nothing at or past b remains (returns false: the
// drain is complete). After Close it keeps returning true while records at
// or past b — or held stale records — remain, so a draining backend
// flushes the in-flight buckets instead of abandoning them. Cancelling ctx
// returns false immediately.
func (q *ingestQueue) awaitBucket(ctx context.Context, b netmodel.Bucket) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	stop := context.AfterFunc(ctx, q.cond.Broadcast)
	defer stop()
	for {
		if ctx.Err() != nil {
			return false
		}
		if b < q.watermark {
			return true
		}
		if q.closed {
			return q.maxQueuedLocked() >= b || len(q.stale) > 0
		}
		q.cond.Wait()
	}
}

// ObservationsAt implements ingest.ObservationSource: it serves bucket b's
// records in arrival order, preceded by any held stale records (the
// pipeline's quarantine rejects those as late). It blocks until b seals,
// the queue closes, or ctx is cancelled; the pipeline's warmup and step
// loops call it with non-decreasing buckets, discarding skipped ones.
func (q *ingestQueue) ObservationsAt(ctx context.Context, b netmodel.Bucket, buf []trace.Observation) ([]trace.Observation, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.discardBelowLocked(b)
	stop := context.AfterFunc(ctx, q.cond.Broadcast)
	defer stop()
	for b >= q.watermark && !q.closed && ctx.Err() == nil {
		q.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return buf, err
	}
	start := len(buf)
	buf = append(buf, q.stale...)
	buf = append(buf, q.pending[b]...)
	q.records -= len(q.stale) + len(q.pending[b])
	q.stale = q.stale[:0]
	delete(q.pending, b)
	if q.jrn != nil {
		// Journal the exact slice served — stale-first order and all, and
		// empty reads too: replaying these streams in order IS how recovery
		// reconstructs the pipeline, so the journal must record every
		// consumption, not just the non-empty ones.
		q.jrn.journalBucket(b, buf[start:])
	}
	if b+1 > q.frontier {
		q.frontier = b + 1
	}
	q.cond.Broadcast()
	return buf, nil
}

// markStepped records that the backend finished the whole step for bucket
// b — pipeline mutation AND report publication. awaitFrontier only proves
// the read happened; recovery needs this stronger barrier before touching
// pipeline state (DiscardWindow) between replayed buckets.
func (q *ingestQueue) markStepped(b netmodel.Bucket) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if b > q.stepped {
		q.stepped = b
	}
	q.cond.Broadcast()
}

// awaitStepped blocks until markStepped(b) (or ctx cancellation / queue
// close). Returns whether the step completed.
func (q *ingestQueue) awaitStepped(ctx context.Context, b netmodel.Bucket) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	stop := context.AfterFunc(ctx, q.cond.Broadcast)
	defer stop()
	for q.stepped < b && !q.closed && ctx.Err() == nil {
		q.cond.Wait()
	}
	return q.stepped >= b
}
