package server

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/trace"
)

// concurrencyWorkload replays the small-scale workload into a daemon with
// the given number of concurrent ingest goroutines and read hammerers,
// and returns the canonical report stream. ManualSeal isolates the
// result from arrival order: bucket b is owned by pusher b%pushers, so
// within-bucket order is preserved while cross-bucket arrival order is
// whatever the scheduler makes of it; nothing seals until every record
// is in.
func concurrencyWorkload(t *testing.T, warmup, horizon netmodel.Bucket, pushers, readers int) []byte {
	t.Helper()
	probeSim := newTestSim(1)
	feed := newTestSim(1)
	pcfg := pipeline.DefaultConfig()
	pcfg.Workers = 1
	srv, err := New(pipeline.Deps{
		World:  probeSim.World,
		Table:  probeSim.Routes,
		Prober: probe.NewEngine(probeSim, pcfg.ProbeNoiseMS),
	}, Config{Pipeline: pcfg, WarmupBuckets: warmup, ManualSeal: true})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// Pre-generate every bucket's body sequentially: the simulator is not
	// shared across goroutines, and each run must feed identical bytes.
	bodies := make([][]byte, horizon)
	var obs []trace.Observation
	for b := netmodel.Bucket(0); b < horizon; b++ {
		obs = feed.ObservationsAt(b, obs[:0])
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, obs); err != nil {
			t.Fatal(err)
		}
		bodies[b] = buf.Bytes()
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for i := 0; i < readers; i++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			paths := []string{"/v1/verdicts", "/metrics", "/healthz", "/v1/reports"}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(ts.URL + paths[n%len(paths)])
				if err != nil {
					return // server shutting down
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	var pushWG sync.WaitGroup
	for p := 0; p < pushers; p++ {
		pushWG.Add(1)
		go func(p int) {
			defer pushWG.Done()
			for b := netmodel.Bucket(p); b < horizon; b += netmodel.Bucket(pushers) {
				postWithRetry(t, client, ts.URL+"/v1/ingest", bodies[b])
			}
		}(p)
	}
	pushWG.Wait()

	if status, body := postSeal(t, client, ts.URL, horizon-1); status != 202 {
		t.Fatalf("seal = %d (%s), want 202", status, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	readerWG.Wait()
	return collectCanonical(t, client, ts.URL)
}

// TestConcurrentIngestAndReads hammers the frontend with concurrent
// ingest goroutines and read-path goroutines (this is the package's
// -race exercise) and requires the final verdict stream to be
// byte-identical to a sequential single-client run.
func TestConcurrentIngestAndReads(t *testing.T) {
	warmup := netmodel.Bucket(netmodel.BucketsPerHour)
	horizon := netmodel.Bucket(4 * netmodel.BucketsPerHour)
	want := concurrencyWorkload(t, warmup, horizon, 1, 0)
	if len(want) == 0 {
		t.Fatal("sequential run produced no reports")
	}
	got := concurrencyWorkload(t, warmup, horizon, 4, 3)
	if !bytes.Equal(got, want) {
		t.Fatalf("concurrent run diverged from sequential: %d vs %d canonical bytes", len(got), len(want))
	}
}
