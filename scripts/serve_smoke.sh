#!/usr/bin/env bash
# serve-smoke: boot blameitd, replay a one-day small-scale trace into it
# over HTTP with the tracegen loadgen, assert the read APIs serve
# verdicts/reports/metrics, then SIGTERM and require a clean drain
# (exit 0). This is the daemon's end-to-end liveness gate; the
# byte-equivalence gate lives in internal/server's tests.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${SMOKE_PORT:-7031}"
BASE="http://$ADDR"
BIN="$(mktemp -d)"
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/blameitd" ./cmd/blameitd
go build -o "$BIN/blameit-tracegen" ./cmd/blameit-tracegen

# -warmup 0: localize from bucket 0 so a one-day trace yields reports.
"$BIN/blameitd" -addr "$ADDR" -scale small -warmup 0 -days 1 &
DPID=$!

up=""
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
  kill -0 "$DPID" 2>/dev/null || { echo "serve-smoke: blameitd died during startup" >&2; exit 1; }
  sleep 0.1
done
[ -n "$up" ] || { echo "serve-smoke: blameitd never answered /healthz" >&2; exit 1; }

# Replay the matching trace (same default seeds) over HTTP; the loadgen
# seals the final bucket so the backend localizes everything.
"$BIN/blameit-tracegen" -scale small -days 1 -post "$BASE"

# Wait for the backend to consume the queue.
depth=""
for _ in $(seq 1 300); do
  depth=$(curl -fsS "$BASE/healthz" | sed -n 's/.*"queue_depth":\([0-9]*\).*/\1/p')
  [ "${depth:-1}" = "0" ] && break
  sleep 0.2
done
[ "${depth:-1}" = "0" ] || { echo "serve-smoke: backend failed to drain (queue_depth=$depth)" >&2; exit 1; }

reports=$(curl -fsS "$BASE/healthz" | sed -n 's/.*"reports":\([0-9]*\).*/\1/p')
[ "${reports:-0}" -gt 0 ] || { echo "serve-smoke: no reports published" >&2; exit 1; }

# The read APIs must serve: the verdict stream, the report index, one
# canonical report by bucket, and the metrics snapshot.
# (capture bodies before grepping: `curl | grep -q` races — grep exits on
# the first match and curl dies with EPIPE under pipefail)
curl -fsS "$BASE/v1/verdicts" >/dev/null
index=$(curl -fsS "$BASE/v1/reports")
grep -q '"from"' <<<"$index" || { echo "serve-smoke: report index is empty" >&2; exit 1; }
curl -fsS "$BASE/v1/reports/200" >/dev/null
snap=$(curl -fsS "$BASE/metrics")
grep -q 'server.ingest.records' <<<"$snap" || { echo "serve-smoke: metrics missing ingest counters" >&2; exit 1; }

# Keep one canonical report for the fleet phase's equivalence check.
curl -fsS "$BASE/v1/reports/200" > "$BIN/report200-raw.json"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$DPID"
if ! wait "$DPID"; then
  echo "serve-smoke: blameitd exited non-zero on SIGTERM" >&2
  exit 1
fi
DPID=""

# Phase 2: the same day ingested entirely through the edge-aggregate
# path. A fresh daemon, the fleet mode of the loadgen POSTing per-agent
# partial batches to /v1/aggregates in bucket order, and the localization
# output must be byte-identical to the raw replay's.
"$BIN/blameitd" -addr "$ADDR" -scale small -warmup 0 -days 1 &
DPID=$!
up=""
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
  kill -0 "$DPID" 2>/dev/null || { echo "serve-smoke: blameitd died during fleet-phase startup" >&2; exit 1; }
  sleep 0.1
done
[ -n "$up" ] || { echo "serve-smoke: blameitd never answered /healthz (fleet phase)" >&2; exit 1; }

"$BIN/blameit-tracegen" -scale small -days 1 -fleet 2 -post "$BASE"

depth=""
for _ in $(seq 1 300); do
  depth=$(curl -fsS "$BASE/healthz" | sed -n 's/.*"queue_depth":\([0-9]*\).*/\1/p')
  [ "${depth:-1}" = "0" ] && break
  sleep 0.2
done
[ "${depth:-1}" = "0" ] || { echo "serve-smoke: fleet-fed backend failed to drain (queue_depth=$depth)" >&2; exit 1; }

# Every posted partial must have landed: 2 agents x 288 buckets merged,
# nothing deduplicated or rejected, and the sealed buckets flushed.
fleetsnap=$(curl -fsS "$BASE/metrics")
counter() { sed -n "s/.*\"$1\": *\([0-9-]*\).*/\1/p" <<<"$fleetsnap"; }
partials=$(counter 'server\.aggregates\.partials')
[ "${partials:-0}" = "576" ] || { echo "serve-smoke: aggregate partials merged=$partials, want 576" >&2; exit 1; }
[ "$(counter 'server\.aggregates\.deduped')" = "0" ] || { echo "serve-smoke: unexpected aggregate dedup" >&2; exit 1; }
[ "$(counter 'server\.aggregates\.rejected_batches')" = "0" ] || { echo "serve-smoke: aggregate batches rejected" >&2; exit 1; }

# The fleet-fed run must publish the same canonical report bytes.
curl -fsS "$BASE/v1/reports/200" > "$BIN/report200-fleet.json"
cmp -s "$BIN/report200-raw.json" "$BIN/report200-fleet.json" || {
  echo "serve-smoke: fleet-fed report diverges from raw replay" >&2; exit 1; }

kill -TERM "$DPID"
if ! wait "$DPID"; then
  echo "serve-smoke: blameitd exited non-zero on SIGTERM (fleet phase)" >&2
  exit 1
fi
DPID=""
echo "serve-smoke: OK ($reports reports served; fleet phase byte-identical)"
