#!/usr/bin/env bash
# crash-smoke: the kill -9 gate for the WAL-backed daemon. A control
# blameitd ingests a one-day small-scale trace uninterrupted in memory;
# a second blameitd with -data-dir ingests the same trace bucket by
# bucket and is SIGKILLed (no drain, no warning) at several points, some
# on drained sealed-bucket boundaries and some right after a seal ack
# with the backend mid-flight. Every restart must replay its WAL cleanly
# (no inconsistencies, no degraded durability) and the survivor must
# serve a /v1/reports index and canonical report bodies byte-identical
# to the control's. The seeded per-crash-point matrix lives in
# internal/server's TestCrashRecoverySIGKILL; this script is the
# shell-level end-to-end proof against real processes and a real disk.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${CRASH_SMOKE_PORT:-7033}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/blameitd" ./cmd/blameitd
go build -o "$WORK/blameit-tracegen" ./cmd/blameit-tracegen

# World flags for both daemon arms and the matching trace producer.
# -warmup 0 so a one-day trace localizes from bucket 0.
WORLD=(-scale small -seed 42 -workload random -warmup 0 -days 1)
TGEN=(-scale small -seed 42 -faults random -days 1)

wait_up() {
  local up=""
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
    kill -0 "$DPID" 2>/dev/null || { echo "crash-smoke: blameitd died during startup" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$up" ] || { echo "crash-smoke: blameitd never answered /healthz" >&2; exit 1; }
}

healthz_field() { # healthz_field <json-int-field>
  curl -fsS "$BASE/healthz" | sed -n "s/.*\"$1\":\([0-9-]*\).*/\1/p"
}

wait_drained() {
  local depth=""
  for _ in $(seq 1 300); do
    depth=$(healthz_field queue_depth)
    [ "${depth:-1}" = "0" ] && break
    sleep 0.2
  done
  [ "${depth:-1}" = "0" ] || { echo "crash-smoke: backend failed to drain (queue_depth=$depth)" >&2; exit 1; }
}

# --- Control arm: uninterrupted, in-memory ---
"$WORK/blameitd" -addr "$ADDR" "${WORLD[@]}" &
DPID=$!
wait_up
"$WORK/blameit-tracegen" "${TGEN[@]}" -post "$BASE" >/dev/null
wait_drained
curl -fsS "$BASE/v1/reports" > "$WORK/index-control.json"
for b in 119 200 287; do
  curl -fsS "$BASE/v1/reports/$b" > "$WORK/report$b-control.json"
done
kill -TERM "$DPID"; wait "$DPID" || true
DPID=""
grep -q '"from"' "$WORK/index-control.json" || { echo "crash-smoke: control produced no reports" >&2; exit 1; }

# --- Kill arm: same trace, WAL-backed, SIGKILLed along the way ---
# Split the trace into per-bucket JSONL chunks so the feeder controls
# exactly which records each daemon incarnation has acked.
"$WORK/blameit-tracegen" "${TGEN[@]}" -o "$WORK/trace.jsonl"
mkdir -p "$WORK/buckets"
awk -v dir="$WORK/buckets" 'match($0, /"bucket":[0-9]+/) {
  b = substr($0, RSTART+9, RLENGTH-9) + 0
  f = dir "/b" b ".jsonl"; print >> f; close(f)
}' "$WORK/trace.jsonl"

DATA="$WORK/wal"
start_wal_daemon() {
  "$WORK/blameitd" -addr "$ADDR" "${WORLD[@]}" -data-dir "$DATA" -fsync off -compact-every 16 &
  DPID=$!
  wait_up
  local bad
  bad=$(healthz_field recovery_inconsistent)
  [ "${bad:-0}" = "0" ] || { echo "crash-smoke: recovery_inconsistent=$bad after restart" >&2; exit 1; }
  if curl -fsS "$BASE/healthz" | grep -q '"degraded_durability":true'; then
    echo "crash-smoke: durability degraded after restart" >&2; exit 1
  fi
}

feed_range() { # feed_range <from> <to-inclusive>
  local b
  for b in $(seq "$1" "$2"); do
    if [ -s "$WORK/buckets/b$b.jsonl" ]; then
      # Bounded retry on 429 backpressure; anything else is fatal.
      local tries=0
      until curl -fsS -o /dev/null --data-binary "@$WORK/buckets/b$b.jsonl" "$BASE/v1/ingest"; do
        tries=$((tries + 1))
        [ "$tries" -lt 50 ] || { echo "crash-smoke: ingest bucket $b kept failing" >&2; exit 1; }
        sleep 0.2
      done
    fi
    curl -fsS -o /dev/null -H 'Content-Type: application/json' \
      --data "{\"through\":$b}" "$BASE/v1/seal"
  done
}

start_wal_daemon
next=0
ki=0
# Kill points: after bucket 40 and 230 the queue is drained first (a
# sealed-bucket boundary); after 120 and 170 the seal is acked but the
# backend is wherever the SIGKILL finds it.
for kb in 40 120 170 230; do
  feed_range "$next" "$kb"
  next=$((kb + 1))
  if [ $((ki % 2)) = 0 ]; then wait_drained; fi
  ki=$((ki + 1))
  kill -9 "$DPID"; wait "$DPID" 2>/dev/null || true
  DPID=""
  start_wal_daemon
done
feed_range "$next" 287
wait_drained

recovered=$(healthz_field recovered_reports)
[ "${recovered:-0}" -gt 0 ] || { echo "crash-smoke: final restart recovered no reports" >&2; exit 1; }

# The survivor must serve exactly what the uninterrupted control served.
curl -fsS "$BASE/v1/reports" > "$WORK/index-wal.json"
cmp -s "$WORK/index-control.json" "$WORK/index-wal.json" || {
  echo "crash-smoke: report index diverges from control after kill -9 recovery" >&2; exit 1; }
for b in 119 200 287; do
  curl -fsS "$BASE/v1/reports/$b" > "$WORK/report$b-wal.json"
  cmp -s "$WORK/report$b-control.json" "$WORK/report$b-wal.json" || {
    echo "crash-smoke: canonical report $b diverges from control" >&2; exit 1; }
done

# And still die cleanly when asked nicely.
kill -TERM "$DPID"
if ! wait "$DPID"; then
  echo "crash-smoke: blameitd exited non-zero on SIGTERM" >&2
  exit 1
fi
DPID=""
echo "crash-smoke: OK (4 kill -9 recoveries; index + 3 canonical reports byte-identical; recovered_reports=$recovered)"
