module blameit

go 1.22
