GO ?= go

.PHONY: all build vet test race chaos crash crash-smoke fleet multicloud fuzz bench-parallel bench-replay bench-json cover serve-smoke verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The packages that fan work out across goroutines (sharded observation
# generation, the parallel Algorithm 1 job, the blameitd frontend/backend
# split) plus the localizer they call concurrently and the ingestion
# layer the pipeline reads through, under the race detector.
race:
	$(GO) test -race ./internal/sim/... ./internal/pipeline/... ./internal/core/... ./internal/parallel/... ./internal/ingest/... ./internal/trace/... ./internal/probe/... ./internal/chaos/... ./internal/server/... ./internal/wal/... ./internal/fleet/... ./internal/multicloud/... ./internal/topology/...

# The crash-safety gate, under the race detector: every WAL-layer test
# (framing, torn tails, compaction crash points) plus the service-level
# kill-injection matrix — 20 seeded in-process crash points, 20 kill -9s
# against the real binary, the 2-day restart-under-chaos run, and the
# degraded-disk / corrupt-tail / Retry-After surfaces. Recovery must be
# byte-identical everywhere.
crash:
	$(GO) test -race -count=1 -timeout 20m ./internal/wal/
	$(GO) test -race -count=1 -timeout 20m -run 'TestWAL|TestRetryAfter|TestCrashRecovery|TestRestartUnderChaos' ./internal/server/

# Shell-level kill -9 proof against real processes and a real disk: feed
# a WAL-backed blameitd bucket by bucket, SIGKILL it four times, and
# require the survivor to serve byte-identical reports to an
# uninterrupted in-memory control.
crash-smoke:
	bash scripts/crash_smoke.sh

# The headline robustness gate: a 7-day A/B run under the heavy chaos
# profile (20% probe failures, 5% corrupt records, bursty late delivery)
# with the race detector on. Must finish with every injected fault
# accounted for and no wrong localizations.
chaos:
	$(GO) test -race -run TestChaosEndToEnd -count=1 -timeout 10m ./internal/chaos/

# The edge-aggregation gates: the fleet-vs-centralized byte-equivalence
# property at several agent counts plus the 7-day fleet chaos run
# (loss/lag/churn/duplication with exact delivery books and zero wrong
# localizations), both under the race detector.
fleet:
	$(GO) test -race -run 'TestFleet' -count=1 -timeout 10m ./internal/fleet/

# The multi-provider gate: three independent pipelines over one shared
# internet with seeded transit faults, under the race detector. Must
# finish with zero cross-provider disagreements on the blamed middle AS
# and zero blame of another provider's cloud segment.
multicloud:
	$(GO) test -race -run TestMulticloud -count=1 -timeout 10m ./internal/multicloud/

# Short fuzzing sweeps over every decoder and invariant-bearing routine
# with a registered fuzz target (the corpora in testdata/fuzz grow as CI
# finds new inputs).
fuzz:
	$(GO) test -run NONE -fuzz FuzzStreamSource -fuzztime 20s ./internal/ingest/
	$(GO) test -run NONE -fuzz FuzzWALDecode -fuzztime 20s ./internal/wal/
	$(GO) test -run NONE -fuzz FuzzParseAddr -fuzztime 10s ./internal/ipaddr/
	$(GO) test -run NONE -fuzz FuzzParsePrefix -fuzztime 10s ./internal/ipaddr/
	$(GO) test -run NONE -fuzz FuzzContainment -fuzztime 10s ./internal/ipaddr/
	$(GO) test -run NONE -fuzz FuzzQuantileMonotonicity -fuzztime 10s ./internal/stats/
	$(GO) test -run NONE -fuzz FuzzSummarizeOrdering -fuzztime 10s ./internal/stats/
	$(GO) test -run NONE -fuzz FuzzCDFQuantileAgreement -fuzztime 10s ./internal/stats/

# Sequential-vs-parallel full-day pipeline pair; on an N-core machine the
# parallel variant should approach N x (output is identical either way).
bench-parallel:
	$(GO) test -run NONE -bench 'BenchmarkPipeline(Sequential|Parallel)$$' -benchtime 3x .

# Ingestion-path comparison: live sim generation vs. the store-backed §6.1
# scan path vs. streaming JSONL trace replay, half a day of records each.
bench-replay:
	$(GO) test -run NONE -bench 'BenchmarkIngest(LiveSim|StoreBacked|StreamReplay)$$' -benchtime 3x .

# Perf-trajectory snapshot: run the blameit-bench harness and write the
# schema-stable BENCH_<date>.json document (ingest throughput per source,
# classification rate, Algorithm 1 wall time, per-record allocation
# accounting; see DESIGN.md §11). CI uploads the file as an artifact.
bench-json:
	$(GO) run ./cmd/blameit-bench -o BENCH_$$(date -u +%Y-%m-%d).json

# Coverage over every package (-short skips the multi-minute integration
# runs), printing the module total; leaves cover.out behind for
# `go tool cover -html=cover.out` or a full `go tool cover -func` listing.
cover:
	$(GO) test -short -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# End-to-end daemon liveness: boot blameitd, replay a one-day trace into
# it over HTTP with the tracegen loadgen, assert the read APIs answer,
# SIGTERM, and require a clean drain (exit 0).
serve-smoke:
	bash scripts/serve_smoke.sh

# The gate every change must pass: static checks, full build, full test
# suite, and the race-detector pass over the concurrent packages.
verify: vet build test race
