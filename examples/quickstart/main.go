// Example quickstart: the minimal end-to-end BlameIt flow.
//
// It builds a small synthetic world, injects one middle-segment fault,
// learns expected RTTs over a warmup day, and runs the two-phase
// localization — Algorithm 1 on the passive RTT stream, then a budgeted
// on-demand traceroute compared against background baselines — printing
// the verdicts as they appear.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

func main() {
	// 1. A deterministic synthetic world: cloud edges, transit fabric,
	// client prefixes, routes.
	world := topology.Generate(topology.SmallScale(), 7)
	st := world.Stats()
	fmt.Printf("world: %d cloud locations, %d ASes, %d client /24s\n", st.Clouds, st.ASes, st.Prefix24s)

	// 2. One fault: a European transit AS degrades by 80 ms for two hours,
	// starting at 10:00 on day 2 (day 0 is the learning day, day 1
	// establishes traceroute baselines).
	faultyAS := world.Transits[netmodel.RegionEurope][0]
	fault := faults.Fault{
		Kind: faults.MiddleASFault, AS: faultyAS, ScopeCloud: faults.NoCloud,
		Start:    2*netmodel.BucketsPerDay + 10*netmodel.BucketsPerHour,
		Duration: 2 * netmodel.BucketsPerHour,
		ExtraMS:  80,
	}
	fmt.Printf("injected: +%.0fms in %s for %d minutes\n\n",
		fault.ExtraMS, world.ASes[faultyAS].Name, fault.Duration.Minutes())

	// 3. Routing (with realistic churn), the latency simulator, and the
	// assembled pipeline.
	horizon := netmodel.Bucket(3 * netmodel.BucketsPerDay)
	table := bgp.NewTable(world, bgp.DefaultChurnConfig(), horizon, 8)
	simulator := sim.New(world, table, faults.NewSchedule([]faults.Fault{fault}), sim.DefaultConfig(9))
	p := pipeline.NewSim(simulator, pipeline.DefaultConfig())

	// 4. Learn each location's and middle segment's expected RTT (the
	// production system uses a trailing 14-day median).
	p.Warmup(0, netmodel.BucketsPerDay)

	// 5. Run up to the fault (establishing traceroute baselines), then
	// through the fault window, and report what BlameIt concludes about
	// the affected paths.
	p.Run(netmodel.BucketsPerDay, fault.Start, nil)
	blames := make(map[core.Blame]int)
	culprits := make(map[netmodel.ASN]int)
	p.Run(fault.Start, fault.End(), func(rep *pipeline.Report) {
		for _, r := range rep.Results {
			if onPath(r.Path, faultyAS) {
				blames[r.Blame]++
			}
		}
		for _, v := range rep.Verdicts {
			if v.Probed && v.OK && onPath(v.Issue.Path, faultyAS) {
				culprits[v.AS]++
			}
		}
	})

	fmt.Println("passive verdicts for quartets on affected paths during the fault:")
	for _, cat := range core.Categories() {
		fmt.Printf("  %-13s %d\n", cat.String(), blames[cat])
	}
	fmt.Println("\nactive-phase culprit votes for the affected issues:")
	var asns []netmodel.ASN
	for as := range culprits {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return culprits[asns[i]] > culprits[asns[j]] })
	for _, as := range asns {
		marker := ""
		if as == faultyAS {
			marker = "  <= the injected fault"
		}
		fmt.Printf("  AS%-6d %3d%s\n", as, culprits[as], marker)
	}
}

// onPath reports whether a path's middle segment traverses the AS.
func onPath(path netmodel.Path, as netmodel.ASN) bool {
	for _, m := range path.Middle {
		if m == as {
			return true
		}
	}
	return false
}
