// Example monthly-report: the operator-facing view of §6.2 — run the
// pipeline for a simulated week (a compressed stand-in for the paper's
// one-month production window), then print daily blame fractions (Fig. 8),
// the duration distribution of badness incidents (Fig. 4a / Fig. 10), and
// the highest-impact tickets of the period.
//
// Run with: go run ./examples/monthly-report [days]
package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"

	"blameit/internal/alerting"
	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/quartet"
	"blameit/internal/sim"
	"blameit/internal/stats"
	"blameit/internal/topology"
)

func main() {
	days := 7
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil && n > 0 {
			days = n
		}
	}
	warmup := 1
	world := topology.Generate(topology.SmallScale(), 77)
	horizon := netmodel.Bucket((warmup + days) * netmodel.BucketsPerDay)
	sched := faults.Generate(world, faults.DefaultGenerateConfig(), horizon, 78)
	table := bgp.NewTable(world, bgp.DefaultChurnConfig(), horizon, 79)
	simulator := sim.New(world, table, sched, sim.DefaultConfig(80))
	p := pipeline.NewSim(simulator, pipeline.DefaultConfig())

	fmt.Printf("running %d day(s) with %d random faults...\n\n", days, len(sched.Faults))
	p.Warmup(0, netmodel.Bucket(warmup*netmodel.BucketsPerDay))

	daily := make([]map[core.Blame]int, days)
	for i := range daily {
		daily[i] = make(map[core.Blame]int)
	}
	var topTickets []alerting.Ticket
	p.Run(netmodel.Bucket(warmup*netmodel.BucketsPerDay), horizon, func(rep *pipeline.Report) {
		day := rep.To.Day() - warmup
		if day < 0 || day >= days {
			return
		}
		for _, r := range rep.Results {
			daily[day][r.Blame]++
		}
		topTickets = append(topTickets, rep.Tickets...)
	})
	incidents := p.Flush()

	// Daily blame fractions (the Fig. 8 view).
	fmt.Println("daily blame fractions (cloud / middle / client / ambiguous / insufficient):")
	for day := 0; day < days; day++ {
		total := 0
		for _, n := range daily[day] {
			total += n
		}
		if total == 0 {
			continue
		}
		f := func(c core.Blame) float64 { return 100 * float64(daily[day][c]) / float64(total) }
		fmt.Printf("  day %2d: %5.1f%% / %5.1f%% / %5.1f%% / %5.1f%% / %5.1f%%  (%d bad quartets)\n",
			day, f(core.BlameCloud), f(core.BlameMiddle), f(core.BlameClient),
			f(core.BlameAmbiguous), f(core.BlameInsufficient), total)
	}

	// Badness persistence (the Fig. 4a view).
	durations := quartet.Durations(incidents)
	if len(durations) > 0 {
		one, long := 0, 0
		for _, d := range durations {
			if d <= 1 {
				one++
			}
			if d > 24 {
				long++
			}
		}
		fmt.Printf("\nbadness persistence over %d incidents: median %.0f bucket(s), %.0f%% fleeting (<=5 min), %.1f%% over 2h\n",
			len(durations), stats.Median(durations),
			100*float64(one)/float64(len(durations)), 100*float64(long)/float64(len(durations)))
	}

	// The period's biggest tickets.
	sort.Slice(topTickets, func(i, j int) bool { return topTickets[i].Impact > topTickets[j].Impact })
	fmt.Println("\nhighest-impact tickets of the period:")
	for i, t := range topTickets {
		if i >= 8 {
			break
		}
		fmt.Printf("  [%s] impact=%d  %s\n", t.Team, t.Impact, t.Summary)
	}
}
