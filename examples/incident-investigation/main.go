// Example incident-investigation: replays the five real-world case studies
// of §6.3 of the paper — a Brazilian maintenance mishap, a US peering
// fault, an Australian server overload, the East-Asia → US-west traffic
// shift, and an Italian client-ISP maintenance — and shows BlameIt
// localizing each one, with per-incident confidence the way the paper
// reports it.
//
// Run with: go run ./examples/incident-investigation
package main

import (
	"fmt"
	"os"

	"blameit/internal/experiments"
	"blameit/internal/topology"
)

func main() {
	fmt.Println("Replaying the five §6.3 case studies on a synthetic world...")
	fmt.Println()

	tbl, outcomes := experiments.CaseStudySuite(topology.SmallScale(), 42)
	tbl.Render(os.Stdout)

	correct := 0
	for _, co := range outcomes {
		if co.CorrectSegment {
			correct++
		}
	}
	fmt.Printf("BlameIt localized %d/%d incidents to the correct segment.\n", correct, len(outcomes))
	fmt.Println("(The paper reports agreement with manual investigation in all 88 production incidents;")
	fmt.Println(" run `blameit-experiments -run battery` for the randomized 88-incident reproduction.)")
}
