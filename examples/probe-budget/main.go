// Example probe-budget: demonstrates the §5.3 impact-proportional budgeted
// probing. It creates several concurrent middle-segment issues of very
// different client-time impact, gives the active phase a tight traceroute
// budget, and shows that the budget is spent on the issues that matter —
// ranked by expected remaining duration × expected affected clients — not
// on the ones with the most problematic prefixes.
//
// Run with: go run ./examples/probe-budget
package main

import (
	"fmt"
	"sort"

	"blameit/internal/bgp"
	"blameit/internal/faults"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/sim"
	"blameit/internal/topology"
)

func main() {
	world := topology.Generate(topology.SmallScale(), 21)

	// Three concurrent middle faults in one region with contrasting
	// profiles: a long heavy-traffic issue, a long light one, and a brief
	// flash. The long, heavily used transit should win the budget.
	transits := world.Transits[netmodel.RegionUSA]
	day2 := netmodel.Bucket(2 * netmodel.BucketsPerDay)
	fs := []faults.Fault{
		{Kind: faults.MiddleASFault, AS: transits[0], ScopeCloud: faults.NoCloud,
			Start: day2, Duration: 5 * netmodel.BucketsPerHour, ExtraMS: 70,
			Desc: "long-lived fault on a busy transit"},
		{Kind: faults.MiddleASFault, AS: transits[3], ScopeCloud: faults.NoCloud,
			Start: day2, Duration: 5 * netmodel.BucketsPerHour, ExtraMS: 70,
			Desc: "long-lived fault on a lighter transit"},
		{Kind: faults.MiddleASFault, AS: transits[5], ScopeCloud: faults.NoCloud,
			Start: day2 + 6, Duration: 2, ExtraMS: 90,
			Desc: "10-minute flash on another transit"},
	}
	for _, f := range fs {
		fmt.Printf("injected: %s (%s, %d min)\n", f.Desc, world.ASes[f.AS].Name, f.Duration.Minutes())
	}

	horizon := netmodel.Bucket(3 * netmodel.BucketsPerDay)
	table := bgp.NewTable(world, bgp.DefaultChurnConfig(), horizon, 22)
	simulator := sim.New(world, table, faults.NewSchedule(fs), sim.DefaultConfig(23))

	cfg := pipeline.DefaultConfig()
	cfg.BudgetPerCloudPerDay = 2 // a very tight budget
	p := pipeline.NewSim(simulator, cfg)
	p.Warmup(0, netmodel.BucketsPerDay)

	probedClientTime := make(map[netmodel.ASN]float64)
	probedCount := make(map[netmodel.ASN]int)
	skipped := 0
	p.Run(netmodel.BucketsPerDay, horizon, func(rep *pipeline.Report) {
		for _, v := range rep.Verdicts {
			// Attribute the issue to the transit on its path (if any).
			var as netmodel.ASN
			for _, m := range v.Issue.Path.Middle {
				for _, t := range transits {
					if m == t {
						as = m
					}
				}
			}
			if as == 0 {
				continue
			}
			if v.Probed {
				probedCount[as]++
				if v.Issue.ClientTime > probedClientTime[as] {
					probedClientTime[as] = v.Issue.ClientTime
				}
			} else {
				skipped++
			}
		}
	})

	fmt.Printf("\nwith a budget of %d on-demand traceroutes per location per day:\n", cfg.BudgetPerCloudPerDay)
	type row struct {
		as netmodel.ASN
		n  int
		ct float64
	}
	var rows []row
	for as, n := range probedCount {
		rows = append(rows, row{as, n, probedClientTime[as]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for _, r := range rows {
		fmt.Printf("  %-22s probed %2d times (peak client-time estimate %.0f)\n",
			world.ASes[r.as].Name, r.n, r.ct)
	}
	fmt.Printf("  issues left unprobed by the budget: %d\n", skipped)
	fmt.Println("\nThe long-lived, heavily used issue receives the probes; the flash issue")
	fmt.Println("mostly expires before it can out-rank the others — exactly the behaviour")
	fmt.Println("the client-time-product prioritization is designed for.")
}
