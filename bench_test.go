// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: `go test -bench=. -benchmem` reruns each
// experiment on the small-scale world and reports its headline numbers as
// custom benchmark metrics, so the reproduction's shape claims are checked
// on every run. The blameit-experiments command prints the full tables and
// series; these benches track the scalar summaries.
package bench

import (
	"bytes"
	"context"
	"testing"

	"blameit/internal/bgp"
	"blameit/internal/core"
	"blameit/internal/experiments"
	"blameit/internal/faults"
	"blameit/internal/ingest"
	"blameit/internal/netmodel"
	"blameit/internal/pipeline"
	"blameit/internal/probe"
	"blameit/internal/quartet"
	"blameit/internal/sim"
	"blameit/internal/topology"
	"blameit/internal/trace"
)

const benchSeed = 42

func benchScale() topology.Scale { return topology.SmallScale() }

func benchEnv(days int, withFaults bool) *experiments.Env {
	var fs []faults.Fault
	if withFaults {
		w := topology.Generate(benchScale(), benchSeed)
		horizon := netmodel.Bucket(days * netmodel.BucketsPerDay)
		fs = faults.Generate(w, faults.DefaultGenerateConfig(), horizon, benchSeed+11).Faults
	}
	return experiments.NewEnv(experiments.EnvConfig{
		Scale: benchScale(), Seed: benchSeed, Days: days,
		Churn: bgp.DefaultChurnConfig(), Faults: fs,
	})
}

// BenchmarkTable1Properties regenerates the qualitative comparison matrix.
func BenchmarkTable1Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table1Properties()
		if len(tbl.Rows) != 7 {
			b.Fatal("table shape")
		}
	}
}

// BenchmarkTable2Dataset measures the synthetic dataset counts (Table 2).
func BenchmarkTable2Dataset(b *testing.B) {
	var ds experiments.DatasetStats
	for i := 0; i < b.N; i++ {
		e := benchEnv(1, false)
		_, ds = experiments.Table2Dataset(e, 30)
	}
	b.ReportMetric(float64(ds.RTTMeasurements), "rtts/30days")
	b.ReportMetric(float64(ds.Client24s), "client-24s")
	b.ReportMetric(float64(ds.BGPPrefixes), "bgp-prefixes")
}

// BenchmarkFigure2BadQuartets measures badness prevalence per region.
func BenchmarkFigure2BadQuartets(b *testing.B) {
	var res experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		e := benchEnv(1, true)
		_, res = experiments.Figure2BadQuartets(e, 0, 1)
	}
	b.ReportMetric(res.Frac[netmodel.RegionUSA][netmodel.NonMobile]*100, "usa-bad-%")
	b.ReportMetric(res.Frac[netmodel.RegionIndia][netmodel.NonMobile]*100, "india-bad-%")
}

// BenchmarkFigure3Diurnal measures the night-vs-day badness pattern.
func BenchmarkFigure3Diurnal(b *testing.B) {
	var res experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		e := benchEnv(7, false)
		_, res = experiments.Figure3Diurnal(e)
	}
	night := 0.0
	if res.NightHigherThanDay {
		night = 1
	}
	b.ReportMetric(night, "night>day")
}

// BenchmarkFigure4aPersistence measures the long-tailed badness durations
// (paper: >60% fleeting, ~8% over 2 hours).
func BenchmarkFigure4aPersistence(b *testing.B) {
	var res experiments.Fig4aResult
	for i := 0; i < b.N; i++ {
		e := benchEnv(2, true)
		_, res = experiments.Figure4aPersistence(e, 0, 2)
	}
	b.ReportMetric(res.FracOneBucket*100, "fleeting-%")
	b.ReportMetric(res.FracOver2h*100, "over2h-%")
}

// BenchmarkFigure4bImpactSkew measures the ranking advantage of impact
// over prefix count (paper: ~3x fewer tuples for 80% coverage).
func BenchmarkFigure4bImpactSkew(b *testing.B) {
	var res experiments.Fig4bResult
	for i := 0; i < b.N; i++ {
		e := benchEnv(2, true)
		_, res = experiments.Figure4bImpactSkew(e, 0, 2)
	}
	b.ReportMetric(res.RatioAdvantage, "ranking-advantage-x")
}

// BenchmarkFigure6Grouping measures middle-segment sharing under the three
// grouping definitions (paper: BGP path pools the most samples).
func BenchmarkFigure6Grouping(b *testing.B) {
	var res experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		e := benchEnv(1, false)
		_, res = experiments.Figure6Grouping(e)
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	b.ReportMetric(mean(res.ByBGPPrefix), "share-prefix")
	b.ReportMetric(mean(res.ByBGPAtom), "share-atom")
	b.ReportMetric(mean(res.ByBGPPath), "share-path")
}

// BenchmarkFigure8BlameFractions runs a compressed month and reports the
// stable blame mix (paper: middle slightly above client, cloud < 4%).
func BenchmarkFigure8BlameFractions(b *testing.B) {
	days, maintenance := 6, 3
	var res experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		base := benchEnv(1, false)
		fs := experiments.Fig8Schedule(base, 1, days, maintenance, benchSeed+13)
		e := experiments.NewEnv(experiments.EnvConfig{
			Scale: benchScale(), Seed: benchSeed, Days: days + 1,
			Churn: bgp.DefaultChurnConfig(), Faults: fs,
		})
		_, res = experiments.Figure8BlameFractions(e, 1, days, maintenance)
	}
	avg := func(cat core.Blame) float64 {
		var s float64
		for _, v := range res.Daily[cat] {
			s += v
		}
		return 100 * s / float64(len(res.Daily[cat]))
	}
	b.ReportMetric(avg(core.BlameCloud), "cloud-%")
	b.ReportMetric(avg(core.BlameMiddle), "middle-%")
	b.ReportMetric(avg(core.BlameClient), "client-%")
	b.ReportMetric(100*res.Daily[core.BlameCloud][maintenance], "maintenance-day-cloud-%")
}

// BenchmarkFigure9RegionalBlame reports the middle-fraction contrast
// between still-evolving and mature regions.
func BenchmarkFigure9RegionalBlame(b *testing.B) {
	var res experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		base := benchEnv(1, false)
		fs := experiments.Fig9Schedule(base, 1, benchSeed+17)
		e := experiments.NewEnv(experiments.EnvConfig{
			Scale: benchScale(), Seed: benchSeed, Days: 2,
			Churn: bgp.DefaultChurnConfig(), Faults: fs,
		})
		_, res = experiments.Figure9RegionalBlame(e, 1)
	}
	b.ReportMetric(100*res.Frac[netmodel.RegionIndia][core.BlameMiddle], "india-middle-%")
	b.ReportMetric(100*res.Frac[netmodel.RegionUSA][core.BlameMiddle], "usa-middle-%")
}

// BenchmarkFigure10DurationByCategory reports incident-duration medians by
// blame category (paper: cloud issues resolve fastest).
func BenchmarkFigure10DurationByCategory(b *testing.B) {
	var res experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		e := benchEnv(3, true)
		_, res = experiments.Figure10DurationByCategory(e, 1, 2)
	}
	b.ReportMetric(float64(res.Incidents(core.BlameCloud)), "cloud-incidents")
	b.ReportMetric(float64(res.Incidents(core.BlameMiddle)), "middle-incidents")
	b.ReportMetric(float64(res.Incidents(core.BlameClient)), "client-incidents")
}

// BenchmarkCaseStudies replays the five §6.3 case studies (paper: all
// localized correctly).
func BenchmarkCaseStudies(b *testing.B) {
	var outcomes []experiments.CaseOutcome
	for i := 0; i < b.N; i++ {
		_, outcomes = experiments.CaseStudySuite(benchScale(), benchSeed)
	}
	b.ReportMetric(experiments.CorrectFraction(outcomes)*100, "correct-%")
}

// BenchmarkIncidentBattery replays the randomized 88-incident validation
// (paper: 88/88 matched the manual investigations).
func BenchmarkIncidentBattery(b *testing.B) {
	var outcomes []experiments.CaseOutcome
	for i := 0; i < b.N; i++ {
		_, outcomes = experiments.IncidentBatterySuite(benchScale(), benchSeed, 88)
	}
	b.ReportMetric(experiments.CorrectFraction(outcomes)*100, "correct-%")
	b.ReportMetric(float64(len(outcomes)), "incidents")
}

func benchWorkload(n int) experiments.MiddleWorkload {
	return experiments.DefaultMiddleWorkload(benchScale(), benchSeed, n)
}

// BenchmarkFigure11Corroboration compares per-path corroboration under
// BGP-path vs <AS,Metro> grouping (paper: ~88% perfect vs far lower).
func BenchmarkFigure11Corroboration(b *testing.B) {
	var res experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		_, res = experiments.Figure11Corroboration(benchWorkload(25))
	}
	b.ReportMetric(res.PerfectFracBGPPath*100, "bgp-path-perfect-%")
	b.ReportMetric(res.PerfectFracASMetro*100, "as-metro-perfect-%")
}

// BenchmarkFigure12ClientTime compares BlameIt's client-time ranking with
// the oracle (paper: estimate tracks oracle; 5% budget covers ~83%).
func BenchmarkFigure12ClientTime(b *testing.B) {
	var res experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		_, res = experiments.Figure12ClientTime(benchWorkload(40))
	}
	b.ReportMetric(res.Top5Oracle*100, "top5-oracle-%")
	b.ReportMetric(res.Top5Estimate*100, "top5-estimate-%")
	b.ReportMetric(res.Spearman, "spearman")
}

// BenchmarkFigure13FrequencyAccuracy sweeps background probing frequency
// (paper: 12h + churn keeps 93% accuracy at 72x fewer probes).
func BenchmarkFigure13FrequencyAccuracy(b *testing.B) {
	var res experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		_, res = experiments.Figure13FrequencySweep(benchWorkload(15))
	}
	b.ReportMetric(res.SweetSpotAccuracy*100, "sweetspot-accuracy-%")
	b.ReportMetric(res.ProbeReduction1012h, "probe-reduction-x")
}

// BenchmarkProbeOverhead compares probing volume against the active-only
// and Trinocular-style comparators (paper: 72x and 20x fewer).
func BenchmarkProbeOverhead(b *testing.B) {
	var res experiments.ProbeOverheadResult
	for i := 0; i < b.N; i++ {
		_, res = experiments.ProbeOverhead(benchWorkload(12))
	}
	b.ReportMetric(res.VsActiveOnly, "vs-active-only-x")
	b.ReportMetric(res.VsTrinocular, "vs-trinocular-x")
}

// BenchmarkTomographyInfeasibility regenerates the §4.1 rank analysis.
func BenchmarkTomographyInfeasibility(b *testing.B) {
	var res experiments.TomoResult
	for i := 0; i < b.N; i++ {
		_, res = experiments.TomographyInfeasibility(10)
	}
	b.ReportMetric(float64(res.Unknowns-res.Rank), "rank-deficiency")
}

// --- Ablation benches (design choices called out in DESIGN.md §4) ---

// ablationRun measures how often a European client-AS fault is correctly
// blamed on the client under a given Algorithm 1 configuration.
func ablationRun(b *testing.B, cfg core.Config) (clientFrac float64) {
	w := topology.Generate(benchScale(), benchSeed)
	as := w.Eyeballs[netmodel.RegionEurope][1]
	f := faults.Fault{
		Kind: faults.ClientASFault, AS: as, ScopeCloud: faults.NoCloud,
		Start: netmodel.BucketsPerDay + 4*netmodel.BucketsPerHour, Duration: 24, ExtraMS: 110,
	}
	horizon := netmodel.Bucket(2 * netmodel.BucketsPerDay)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, benchSeed+2)
	s := sim.New(w, tbl, faults.NewSchedule([]faults.Fault{f}), sim.DefaultConfig(benchSeed+3))
	pcfg := pipeline.DefaultConfig()
	pcfg.Core = cfg
	p := pipeline.NewSim(s, pcfg)
	p.Warmup(0, netmodel.BucketsPerDay)
	var hits, total int
	p.Run(f.Start, f.End(), func(rep *pipeline.Report) {
		for _, r := range rep.Results {
			if w.Prefixes[r.Q.Obs.Prefix].AS != as {
				continue
			}
			total++
			if r.Blame == core.BlameClient {
				hits++
			}
		}
	})
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// BenchmarkAblationTau sweeps the bad-fraction threshold τ.
func BenchmarkAblationTau(b *testing.B) {
	taus := []float64{0.6, 0.8, 0.95}
	var fracs []float64
	for i := 0; i < b.N; i++ {
		fracs = fracs[:0]
		for _, tau := range taus {
			cfg := core.DefaultConfig()
			cfg.Tau = tau
			fracs = append(fracs, ablationRun(b, cfg))
		}
	}
	b.ReportMetric(fracs[0]*100, "client-recall-tau0.6-%")
	b.ReportMetric(fracs[1]*100, "client-recall-tau0.8-%")
	b.ReportMetric(fracs[2]*100, "client-recall-tau0.95-%")
}

// cloudFaultRecall measures how often a moderate cloud fault (large
// against the location's expected RTT, but leaving many quartets under the
// static badness target — the §4.3 worked example) is blamed on the cloud.
func cloudFaultRecall(cfg core.Config) float64 {
	w := topology.Generate(benchScale(), benchSeed)
	c := w.CloudsInRegion(netmodel.RegionEurope)[0]
	f := faults.Fault{
		Kind: faults.CloudFault, Cloud: c, ScopeCloud: faults.NoCloud,
		Start: netmodel.BucketsPerDay + 4*netmodel.BucketsPerHour, Duration: 24, ExtraMS: 18,
	}
	horizon := netmodel.Bucket(2 * netmodel.BucketsPerDay)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, benchSeed+2)
	s := sim.New(w, tbl, faults.NewSchedule([]faults.Fault{f}), sim.DefaultConfig(benchSeed+3))
	pcfg := pipeline.DefaultConfig()
	pcfg.Core = cfg
	p := pipeline.NewSim(s, pcfg)
	p.Warmup(0, netmodel.BucketsPerDay)
	var hits, total int
	p.Run(f.Start, f.End(), func(rep *pipeline.Report) {
		for _, r := range rep.Results {
			if r.Q.Obs.Cloud != c {
				continue
			}
			total++
			if r.Blame == core.BlameCloud {
				hits++
			}
		}
	})
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// BenchmarkAblationExpectedRTT compares learned expected RTTs against the
// static badness targets on a moderate cloud fault (the §4.3 design
// choice: the learned median catches distribution shifts the static
// threshold misses).
func BenchmarkAblationExpectedRTT(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		with = cloudFaultRecall(cfg)
		cfg.UseExpectedRTT = false
		without = cloudFaultRecall(cfg)
	}
	b.ReportMetric(with*100, "with-expected-%")
	b.ReportMetric(without*100, "without-expected-%")
}

// BenchmarkAblationMinAggregate sweeps the minimum aggregate size gate.
func BenchmarkAblationMinAggregate(b *testing.B) {
	var low, def, high float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.MinAggregate = 1
		low = ablationRun(b, cfg)
		cfg.MinAggregate = 5
		def = ablationRun(b, cfg)
		cfg.MinAggregate = 20
		high = ablationRun(b, cfg)
	}
	b.ReportMetric(low*100, "min1-%")
	b.ReportMetric(def*100, "min5-%")
	b.ReportMetric(high*100, "min20-%")
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkObservationGeneration measures the simulator's passive-stream
// throughput (observations per op over one bucket).
func BenchmarkObservationGeneration(b *testing.B) {
	e := benchEnv(1, true)
	var buf []trace.Observation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = e.Sim.ObservationsAt(netmodel.Bucket(i%netmodel.BucketsPerDay), buf[:0])
	}
	b.ReportMetric(float64(len(buf)), "observations")
}

// BenchmarkAlgorithm1 measures one Algorithm 1 pass over a bucket's
// quartets.
func BenchmarkAlgorithm1(b *testing.B) {
	e := benchEnv(1, true)
	qs, _ := e.QuartetsAt(netmodel.Bucket(20*netmodel.BucketsPerHour), nil)
	loc := core.NewLocalizer(core.DefaultConfig(), e.World.CloudASN(),
		func(p netmodel.PrefixID, c netmodel.CloudID, bb netmodel.Bucket) netmodel.Path {
			return e.Table.PathAtForPrefix(c, p, bb)
		}, nil)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(loc.Localize(qs))
	}
	b.ReportMetric(float64(len(qs)), "quartets")
	_ = n
}

// BenchmarkPipelineDay measures a full pipeline day end to end.
func BenchmarkPipelineDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := benchEnv(2, true)
		p := e.NewPipeline(pipeline.DefaultConfig())
		p.Warmup(0, netmodel.BucketsPerDay)
		p.Run(netmodel.BucketsPerDay, 2*netmodel.BucketsPerDay, nil)
	}
}

// benchPipelineFullDay drives one warmup day plus one full evaluated day
// through a fresh pipeline at the given worker count. The environment is
// built once outside the timer and the simulator's fan-out is flipped per
// run; output is byte-identical at any worker count, so the sequential and
// parallel benchmarks below perform exactly the same work.
func benchPipelineFullDay(b *testing.B, workers int) {
	e := benchEnv(2, true)
	e.Sim.SetWorkers(workers)
	cfg := pipeline.DefaultConfig()
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := e.NewPipeline(cfg)
		p.Warmup(0, netmodel.BucketsPerDay)
		p.Run(netmodel.BucketsPerDay, 2*netmodel.BucketsPerDay, nil)
	}
}

// BenchmarkPipelineSequential is the single-goroutine reference for the
// full-day pipeline window (Workers=1 everywhere).
func BenchmarkPipelineSequential(b *testing.B) { benchPipelineFullDay(b, 1) }

// BenchmarkPipelineParallel runs the same full-day window with the default
// fan-out (all cores). Compare against BenchmarkPipelineSequential.
func BenchmarkPipelineParallel(b *testing.B) { benchPipelineFullDay(b, 0) }

// BenchmarkQuartetClassify measures the quartet classifier.
func BenchmarkQuartetClassify(b *testing.B) {
	o := trace.Observation{Prefix: 1, Cloud: 2, Samples: 30, MeanRTT: 55}
	for i := 0; i < b.N; i++ {
		quartet.Classify(o, 50)
	}
}

// BenchmarkTraceroute measures the simulated traceroute engine.
func BenchmarkTraceroute(b *testing.B) {
	e := benchEnv(1, false)
	engine := probe.NewEngine(e.Sim, 0.5)
	p := e.World.Prefixes[0].ID
	c := e.World.Attachments(p)[0].Cloud
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Traceroute(c, p, netmodel.Bucket(i%netmodel.BucketsPerDay), 0)
	}
}

// BenchmarkReverseTraceroutes evaluates the §5.1 future-work extension:
// reverse-only congestion is invisible to forward probing and localized by
// rich-client reverse traceroutes.
func BenchmarkReverseTraceroutes(b *testing.B) {
	var res experiments.ReverseEvalResult
	for i := 0; i < b.N; i++ {
		_, res = experiments.ReverseEval(benchScale(), benchSeed, 15)
	}
	b.ReportMetric(res.ForwardAccuracy*100, "forward-only-%")
	b.ReportMetric(res.ReverseAccuracy*100, "with-reverse-%")
	b.ReportMetric(res.CoveredAccuracy*100, "within-coverage-%")
}

// BenchmarkAblationBudgetMode compares the production per-location budget
// against the per-AS alternative the paper rejects for simplicity (§5.3),
// under a shared middle-fault workload and equal per-entity allowances.
func BenchmarkAblationBudgetMode(b *testing.B) {
	run := func(mode probe.BudgetMode) (probed int64, distinct int) {
		env, start, end := experiments.DefaultMiddleWorkload(benchScale(), benchSeed, 10).Build()
		cfg := pipeline.DefaultConfig()
		cfg.BudgetPerCloudPerDay = 2
		p := env.NewPipeline(cfg)
		p.Budget.Mode = mode
		p.Warmup(0, netmodel.BucketsPerDay)
		seen := map[netmodel.MiddleKey]bool{}
		p.Run(netmodel.BucketsPerDay, end, func(rep *pipeline.Report) {
			for _, v := range rep.Verdicts {
				if v.Probed {
					seen[v.Issue.Key] = true
				}
			}
		})
		_ = start
		return p.Prober.Counters().Count(probe.OnDemand), len(seen)
	}
	var cloudProbes, asProbes int64
	var cloudIssues, asIssues int
	for i := 0; i < b.N; i++ {
		cloudProbes, cloudIssues = run(probe.PerCloud)
		asProbes, asIssues = run(probe.PerMiddleAS)
	}
	b.ReportMetric(float64(cloudProbes), "per-cloud-probes")
	b.ReportMetric(float64(cloudIssues), "per-cloud-issues")
	b.ReportMetric(float64(asProbes), "per-as-probes")
	b.ReportMetric(float64(asIssues), "per-as-issues")
}

// --- Ingestion-path benches (the bench-replay Makefile target) ---

// benchIngestSim builds the fault-free small-world simulator the ingestion
// benches share.
func benchIngestSim() *sim.Simulator {
	w := topology.Generate(benchScale(), benchSeed)
	horizon := netmodel.Bucket(netmodel.BucketsPerDay)
	tbl := bgp.NewTable(w, bgp.DefaultChurnConfig(), horizon, benchSeed+2)
	return sim.New(w, tbl, faults.NewSchedule(nil), sim.DefaultConfig(benchSeed+3))
}

// benchDrainSource reads half a day of buckets through a source, reporting
// record throughput.
func benchDrainSource(b *testing.B, mk func() ingest.ObservationSource) {
	ctx := context.Background()
	horizon := netmodel.Bucket(netmodel.BucketsPerDay / 2)
	var records int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := mk()
		var buf []trace.Observation
		records = 0
		for bk := netmodel.Bucket(0); bk < horizon; bk++ {
			var err error
			buf, err = src.ObservationsAt(ctx, bk, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			records += int64(len(buf))
		}
	}
	b.ReportMetric(float64(records), "records/op")
}

// BenchmarkIngestLiveSim drains observations straight from the simulator:
// the zero-storage upper bound on ingestion throughput.
func BenchmarkIngestLiveSim(b *testing.B) {
	s := benchIngestSim()
	benchDrainSource(b, func() ingest.ObservationSource { return ingest.NewSimSource(s) })
}

// BenchmarkIngestStoreBacked drains through the full §6.1 path — write
// into hourly-window storage buckets, read back via scan-everything — the
// live pipeline's default wiring.
func BenchmarkIngestStoreBacked(b *testing.B) {
	s := benchIngestSim()
	benchDrainSource(b, func() ingest.ObservationSource {
		st := trace.NewStore(8)
		st.SetRetention(pipeline.SimDepsRetention)
		return ingest.NewStoreIngest(ingest.NewSimSource(s), st)
	})
}

// BenchmarkIngestStreamReplay drains a recorded JSONL trace through the
// streaming reader, measuring replay (decode-bound) throughput.
func BenchmarkIngestStreamReplay(b *testing.B) {
	s := benchIngestSim()
	horizon := netmodel.Bucket(netmodel.BucketsPerDay / 2)
	var file bytes.Buffer
	var buf []trace.Observation
	for bk := netmodel.Bucket(0); bk < horizon; bk++ {
		buf = s.ObservationsAt(bk, buf[:0])
		if err := trace.WriteJSONL(&file, buf); err != nil {
			b.Fatal(err)
		}
	}
	raw := file.Bytes()
	b.SetBytes(int64(len(raw)))
	benchDrainSource(b, func() ingest.ObservationSource {
		return ingest.NewStreamSource(bytes.NewReader(raw))
	})
}
